// Package surface reproduces the role of Android's Surface Manager
// (SurfaceFlinger) in the paper's Figure 1: applications render surfaces,
// the manager combines them and updates the framebuffer, and the display
// hardware independently refreshes the screen from that framebuffer.
//
// V-Sync is modeled the way Android's Project Butter works: a client that
// wants a frame requests one and is called back to render at the next
// vertical sync, so the achieved frame rate can never exceed the refresh
// rate. This V-Sync cap is load-bearing for the paper twice over: it is
// why lowering the refresh rate also eliminates redundant render work
// (the power win), and why the content rate cannot be *measured* above
// the current refresh rate (the blind spot touch boosting fixes).
package surface

import (
	"fmt"

	"ccdem/internal/framebuffer"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// Client renders a surface's content on demand.
type Client interface {
	// Render draws the surface's current content into buf and returns the
	// damaged rectangle (empty when this frame is pixel-identical to the
	// previous one — a redundant frame) and the number of pixels the
	// render pass drew (the GPU cost, which for a redundant frame is
	// typically the full redraw the app wastefully performed).
	Render(t sim.Time, buf *framebuffer.Buffer) (damage framebuffer.Rect, renderedPx int)
}

// ClientFunc adapts a function to the Client interface.
type ClientFunc func(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int)

// Render implements Client.
func (f ClientFunc) Render(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int) {
	return f(t, buf)
}

// RegionClient is an optional refinement of Client: renderers that damage
// several disjoint areas (sprite games erase one spot and draw another)
// report them all, so composition blits and dirty-pixel accounting track
// the actual change instead of a bounding box. SurfaceFlinger's damage
// regions work the same way. The returned region is owned by the client
// and only read until the next render.
type RegionClient interface {
	Client
	// RenderRegion draws the current content and returns the damage
	// region (empty for a redundant frame) and the rendered pixel cost.
	RenderRegion(t sim.Time, buf *framebuffer.Buffer) (*framebuffer.Region, int)
}

// Surface is one client's layer: a buffer positioned at a fixed frame
// rectangle on screen. The manager composes damaged areas into the
// framebuffer in z order. Damage rectangles are in surface-local
// coordinates.
type Surface struct {
	name      string
	z         int
	frame     framebuffer.Rect // position on screen
	buf       *framebuffer.Buffer
	client    Client
	region    RegionClient // client, if it implements RegionClient (cached assertion)
	mgr       *Manager
	wantFrame bool
	everDrawn bool

	// rectScratch backs the damage list for plain-Client renders and the
	// first latch, so per-frame composition allocates nothing.
	rectScratch []framebuffer.Rect

	// composed snapshots (surface buffer gen, framebuffer gen) at the end
	// of this surface's last tiled compose; BlitTiled's generation skip
	// proves tiles unchanged on both sides since then need no re-copy.
	composed framebuffer.ComposeGens

	requests uint64
	renders  uint64
}

// Name returns the surface's diagnostic name.
func (s *Surface) Name() string { return s.name }

// Buffer exposes the surface's backing buffer (apps may pre-draw static
// content before the first frame).
func (s *Surface) Buffer() *framebuffer.Buffer { return s.buf }

// RequestFrame asks the manager to call the surface's client back at the
// next V-Sync. Multiple requests between syncs coalesce into one render,
// exactly like Choreographer frame callbacks.
func (s *Surface) RequestFrame() {
	s.wantFrame = true
	s.requests++
}

// Requests returns the number of frame requests ever made.
func (s *Surface) Requests() uint64 { return s.requests }

// Renders returns the number of render callbacks actually delivered (the
// V-Sync-capped frame count).
func (s *Surface) Renders() uint64 { return s.renders }

// FrameInfo describes one framebuffer update (one latched frame).
type FrameInfo struct {
	T           sim.Time
	Seq         uint64
	DirtyPixels int // pixels that actually changed on screen this frame
	RenderedPx  int // pixels drawn by clients for this frame (the GPU cost)
}

// ComposeMode selects the composition strategy.
type ComposeMode int

const (
	// ComposeNaive is the brute-force pipeline: every damage rectangle is
	// blitted wholesale into the framebuffer. It is the differential-test
	// oracle for the tile path and the default for directly constructed
	// managers.
	ComposeNaive ComposeMode = iota
	// ComposeTiles enables tile tracking on the framebuffer and all
	// surface buffers: composition skips tiles whose content provably did
	// not change (BlitTiled), and a sole full-screen surface is scanned
	// out directly without any copy. The visible framebuffer bytes,
	// dirty-pixel accounting, and FrameInfo stream are identical to
	// ComposeNaive for contract-honoring clients.
	ComposeTiles
)

// Manager combines surfaces into the framebuffer on V-Sync.
type Manager struct {
	eng       *sim.Engine
	fb        *framebuffer.Buffer
	surfaces  []*Surface
	frames    uint64
	onFrame   []func(FrameInfo)
	latchGate func(t sim.Time) bool
	deferred  uint64
	rec       *obs.Recorder
	pool      []*framebuffer.Buffer // detached surface buffers, reusable by dimension
	mode      ComposeMode
	palettes  bool
	// scanout, when non-nil, is the sole full-screen surface whose buffer
	// is scanned out directly in place of the composed framebuffer — the
	// single-layer fast path real compositors call "client target
	// bypass". Engaged at first latch under ComposeTiles; demoted (with a
	// one-time copy into fb) as soon as a second surface registers.
	scanout *Surface
}

// NewManager creates a manager owning a w × h framebuffer.
func NewManager(eng *sim.Engine, w, h int) *Manager {
	return &Manager{eng: eng, fb: framebuffer.New(w, h)}
}

// Reset detaches every surface and hook, returning the manager to a
// freshly constructed state. Detached surfaces become unusable; their
// backing buffers are parked in an internal free pool that NewSurfaceAt
// reuses for matching dimensions, so a recycled manager re-registers its
// surfaces allocation-free.
//
// Neither the framebuffer nor pooled buffers have their pixels cleared.
// That is safe for the composition pipeline itself: a re-registered
// surface's first latch composes its full bounds, overwriting the
// framebuffer area it covers. Clients that fully paint their buffer
// before the first frame (every app and wallpaper in the catalog does)
// therefore behave bit-identically to a fresh manager; a client that
// composes pixels it never painted would see prior-session content
// instead of zeros.
func (m *Manager) Reset() {
	for _, s := range m.surfaces {
		s.mgr = nil
		s.client = nil
		s.region = nil
		m.pool = append(m.pool, s.buf)
	}
	m.surfaces = m.surfaces[:0]
	m.frames = 0
	m.onFrame = m.onFrame[:0]
	m.latchGate = nil
	m.deferred = 0
	m.rec = nil
	// Drop direct scanout without copying back: the stale framebuffer
	// pixels fall under the same contract as pooled buffers above (a
	// re-registered surface's first latch composes its full bounds).
	m.scanout = nil
	// Like pooled buffers, the framebuffer starts the next session with
	// neutral palette state and counters (its pixels stay stale).
	m.fb.Recycle()
}

// SetComposeMode selects the composition strategy. ComposeTiles enables
// tile tracking on the framebuffer and every registered surface buffer
// (newly registered surfaces inherit it). The mode survives Reset;
// device init sets it explicitly per session.
func (m *Manager) SetComposeMode(mode ComposeMode) {
	m.mode = mode
	if mode == ComposeTiles {
		m.fb.EnableTiles()
		for _, s := range m.surfaces {
			s.buf.EnableTiles()
		}
	}
}

// ComposeMode returns the active composition strategy.
func (m *Manager) ComposeMode() ComposeMode { return m.mode }

// SetPalettes turns per-tile palette compression (which implies tile
// tracking) on or off for the framebuffer and every surface buffer;
// newly registered surfaces inherit the setting. Disabling realizes any
// compressed tiles, so flipping the switch never changes content. Like
// the compose mode it survives Reset; device init sets it per session.
func (m *Manager) SetPalettes(on bool) {
	m.palettes = on
	if on {
		m.fb.EnablePalettes()
		for _, s := range m.surfaces {
			s.buf.EnablePalettes()
		}
		return
	}
	m.fb.DisablePalettes()
	for _, s := range m.surfaces {
		s.buf.DisablePalettes()
	}
}

// PalettesEnabled reports whether palette compression is active.
func (m *Manager) PalettesEnabled() bool { return m.palettes }

// PaletteStats aggregates palette-compression counters over the
// framebuffer and every registered surface buffer: tiles currently
// stored compressed, and lifetime promotions back to raw.
func (m *Manager) PaletteStats() (tiles int, promotions uint64) {
	tiles = m.fb.PaletteTiles()
	promotions = m.fb.PalettePromotions()
	for _, s := range m.surfaces {
		tiles += s.buf.PaletteTiles()
		promotions += s.buf.PalettePromotions()
	}
	return tiles, promotions
}

// DirectScanout reports whether the framebuffer currently aliases a sole
// full-screen surface's buffer (no composition copies at all).
func (m *Manager) DirectScanout() bool { return m.scanout != nil }

// takeBuffer reuses a pooled buffer of exactly dx × dy pixels, or
// allocates a fresh (zeroed) one. Pooled buffers keep their previous
// contents — see Reset for why that is safe.
func (m *Manager) takeBuffer(dx, dy int) *framebuffer.Buffer {
	for i, b := range m.pool {
		if b.Width() == dx && b.Height() == dy {
			last := len(m.pool) - 1
			m.pool[i] = m.pool[last]
			m.pool[last] = nil
			m.pool = m.pool[:last]
			// Neutralize provenance: drop copy-on-write views and stale
			// palette state so a session behaves (and counts) identically
			// whether its buffers are fresh or recycled.
			b.Recycle()
			return b
		}
	}
	return framebuffer.New(dx, dy)
}

// Framebuffer exposes the composed framebuffer — what the display hardware
// scans out and what the content-rate meter monitors. Under direct
// scanout this is the sole surface's buffer; callers must re-fetch it
// per use rather than cache it across frames.
func (m *Manager) Framebuffer() *framebuffer.Buffer {
	if m.scanout != nil {
		return m.scanout.buf
	}
	return m.fb
}

// Frames returns the total number of framebuffer updates (latched frames).
func (m *Manager) Frames() uint64 { return m.frames }

// OnFrame registers fn to observe every framebuffer update. The content
// meter and the power model's render accounting both hook here.
func (m *Manager) OnFrame(fn func(FrameInfo)) { m.onFrame = append(m.onFrame, fn) }

// SetLatchGate installs a frame-pacing gate: when gate returns false for a
// V-Sync instant, pending frame requests are deferred to a later sync
// instead of being latched. Frame-rate-adaptation schemes (the E³ engine
// of the paper's related work [16]) throttle applications exactly this
// way — the panel keeps refreshing, but the render/composition pipeline
// runs at a reduced pace. Pass nil to remove the gate.
func (m *Manager) SetLatchGate(gate func(t sim.Time) bool) { m.latchGate = gate }

// DeferredLatches returns how many V-Syncs found pending work but were
// blocked by the latch gate.
func (m *Manager) DeferredLatches() uint64 { return m.deferred }

// SetRecorder attaches a decision-event recorder: every latched frame is
// recorded as FrameSubmitted and every gate-blocked V-Sync as VSyncMissed.
// A nil recorder (the default) disables recording at zero cost.
func (m *Manager) SetRecorder(r *obs.Recorder) { m.rec = r }

// NewSurface registers a full-screen surface at depth z (higher z is
// composed later, i.e. on top).
func (m *Manager) NewSurface(name string, z int, client Client) *Surface {
	return m.NewSurfaceAt(name, z, m.fb.Bounds(), client)
}

// NewSurfaceAt registers a surface occupying the given screen rectangle at
// depth z (higher z is composed later, i.e. on top). A status bar, for
// example, is a thin high-z surface across the top of the screen.
func (m *Manager) NewSurfaceAt(name string, z int, frame framebuffer.Rect, client Client) *Surface {
	if client == nil {
		panic(fmt.Sprintf("surface: nil client for %q", name))
	}
	frame = frame.Clamp(m.fb.Bounds())
	if frame.Empty() {
		panic(fmt.Sprintf("surface: %q has an empty on-screen frame", name))
	}
	if m.scanout != nil {
		// A second surface appears: materialize the owned framebuffer
		// before anyone composes over the directly scanned-out buffer.
		m.fb.CopyFrom(m.scanout.buf)
		m.scanout = nil
	}
	s := &Surface{
		name:   name,
		z:      z,
		frame:  frame,
		buf:    m.takeBuffer(frame.Dx(), frame.Dy()),
		client: client,
		mgr:    m,
	}
	if m.mode == ComposeTiles {
		s.buf.EnableTiles()
	}
	if m.palettes {
		s.buf.EnablePalettes()
	} else {
		// A pooled buffer may carry palette state from a palette session;
		// a palette-off session must not read through it.
		s.buf.DisablePalettes()
	}
	s.region, _ = client.(RegionClient)
	// Insert in z order (stable for equal z).
	idx := len(m.surfaces)
	for i, other := range m.surfaces {
		if other.z > z {
			idx = i
			break
		}
	}
	m.surfaces = append(m.surfaces, nil)
	copy(m.surfaces[idx+1:], m.surfaces[idx:])
	m.surfaces[idx] = s
	return s
}

// VSync is the display panel's per-refresh entry point. If any surface has
// a pending frame request, its client renders now, damaged areas are
// composed into the framebuffer, and a FrameInfo is emitted. With no
// pending requests, the framebuffer is untouched — the panel merely
// re-scans old content (the redundancy the paper's refresh control
// eliminates on the hardware side).
func (m *Manager) VSync(t sim.Time, _ int) {
	pending := false
	for _, s := range m.surfaces {
		if s.wantFrame {
			pending = true
			break
		}
	}
	if !pending {
		return
	}
	if m.latchGate != nil && !m.latchGate(t) {
		m.deferred++
		m.rec.VSyncMissed(t)
		return
	}
	totalDirty := 0
	totalRendered := 0
	latched := false
	for _, s := range m.surfaces {
		if !s.wantFrame {
			continue
		}
		s.wantFrame = false
		var rects []framebuffer.Rect
		var renderedPx int
		if s.region != nil {
			region, px := s.region.RenderRegion(t, s.buf)
			renderedPx = px
			if region != nil {
				rects = region.Rects()
			}
		} else {
			damage, px := s.client.Render(t, s.buf)
			renderedPx = px
			if !damage.Empty() {
				s.rectScratch = append(s.rectScratch[:0], damage)
				rects = s.rectScratch
			}
		}
		s.renders++
		latched = true
		if renderedPx < 0 {
			panic(fmt.Sprintf("surface: %q returned negative render cost", s.name))
		}
		if !s.everDrawn {
			// First latch composes the whole surface.
			s.rectScratch = append(s.rectScratch[:0], s.buf.Bounds())
			rects = s.rectScratch
			s.everDrawn = true
			if m.mode == ComposeTiles && m.scanout == nil &&
				len(m.surfaces) == 1 && s.frame == m.fb.Bounds() {
				// Sole full-screen surface: scan its buffer out directly.
				m.scanout = s
			}
		}
		switch {
		case m.scanout == s:
			// Direct scanout: the surface buffer IS the framebuffer; no
			// copies, but dirty-pixel accounting is unchanged.
			for _, damage := range rects {
				damage = damage.Clamp(s.buf.Bounds())
				totalDirty += damage.Area()
			}
		case m.mode == ComposeTiles:
			prev := s.composed
			if len(m.surfaces) > 1 {
				// The generation skip's induction — "this framebuffer tile
				// equals the surface tile it was composed from" — needs the
				// surface to be the framebuffer's sole writer: another
				// surface's overlapping compose, later partially overwritten,
				// leaves a tile whose generations look settled but whose
				// bytes are a mixture. With overlapping surfaces only the
				// signature + pixel-verify ladder decides (still exact).
				prev = framebuffer.ComposeGens{}
			}
			for _, damage := range rects {
				damage = damage.Clamp(s.buf.Bounds())
				if damage.Empty() {
					continue
				}
				m.fb.BlitTiled(s.buf, damage, s.frame.X0+damage.X0, s.frame.Y0+damage.Y0, prev)
				totalDirty += damage.Area()
			}
			s.composed = framebuffer.ComposeGens{Src: s.buf.Gen(), Dst: m.fb.Gen()}
		default:
			for _, damage := range rects {
				damage = damage.Clamp(s.buf.Bounds())
				if damage.Empty() {
					continue
				}
				m.fb.Blit(s.buf, damage, s.frame.X0+damage.X0, s.frame.Y0+damage.Y0)
				totalDirty += damage.Area()
			}
		}
		totalRendered += renderedPx
	}
	if !latched {
		return
	}
	m.frames++
	m.rec.FrameSubmitted(t, totalDirty, totalRendered)
	info := FrameInfo{T: t, Seq: m.frames, DirtyPixels: totalDirty, RenderedPx: totalRendered}
	for _, fn := range m.onFrame {
		fn(info)
	}
}
