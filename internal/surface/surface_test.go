package surface

import (
	"testing"

	"ccdem/internal/display"
	"ccdem/internal/framebuffer"
	"ccdem/internal/sim"
)

// countingClient renders a solid color that changes each time bump is set.
type countingClient struct {
	color   framebuffer.Color
	renders int
	area    framebuffer.Rect
}

func (c *countingClient) Render(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int) {
	c.renders++
	buf.Fill(c.area, c.color)
	return c.area, c.area.Area()
}

func TestRequestCoalescing(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, 32, 32)
	cl := &countingClient{color: framebuffer.White, area: framebuffer.R(0, 0, 32, 32)}
	s := m.NewSurface("app", 1, cl)
	// Three requests before any vsync coalesce to one render.
	s.RequestFrame()
	s.RequestFrame()
	s.RequestFrame()
	m.VSync(0, 60)
	if cl.renders != 1 {
		t.Errorf("renders = %d, want 1 (coalesced)", cl.renders)
	}
	if s.Requests() != 3 || s.Renders() != 1 {
		t.Errorf("requests/renders = %d/%d", s.Requests(), s.Renders())
	}
	// No request → vsync latches nothing.
	m.VSync(sim.Hz(60), 60)
	if cl.renders != 1 || m.Frames() != 1 {
		t.Errorf("idle vsync rendered: renders=%d frames=%d", cl.renders, m.Frames())
	}
}

func TestFirstFrameComposesWholeSurface(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, 16, 16)
	cl := &countingClient{color: framebuffer.RGB(5, 6, 7), area: framebuffer.R(2, 2, 4, 4)}
	s := m.NewSurface("app", 1, cl)
	// Pre-draw static content outside the damage rect.
	s.Buffer().FillAll(framebuffer.RGB(1, 1, 1))
	var infos []FrameInfo
	m.OnFrame(func(fi FrameInfo) { infos = append(infos, fi) })
	s.RequestFrame()
	m.VSync(0, 60)
	if len(infos) != 1 {
		t.Fatalf("frames = %d", len(infos))
	}
	if infos[0].DirtyPixels != 16*16 {
		t.Errorf("first frame dirty = %d, want full 256", infos[0].DirtyPixels)
	}
	// Static content reached the framebuffer even though damage was small.
	if m.Framebuffer().At(10, 10) != framebuffer.RGB(1, 1, 1) {
		t.Error("pre-drawn content not composed on first frame")
	}
	if m.Framebuffer().At(2, 2) != framebuffer.RGB(5, 6, 7) {
		t.Error("damage content not composed")
	}
	// Second frame reports only the damage area.
	s.RequestFrame()
	m.VSync(sim.Hz(60), 60)
	if infos[1].DirtyPixels != 4 {
		t.Errorf("second frame dirty = %d, want 4", infos[1].DirtyPixels)
	}
}

// redundantClient re-renders identical pixels: full render cost, no damage.
type redundantClient struct{ renders int }

func (c *redundantClient) Render(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int) {
	c.renders++
	return framebuffer.Rect{}, buf.Bounds().Area()
}

func TestRedundantFramesStillLatch(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, 8, 8)
	cl := &redundantClient{}
	s := m.NewSurface("game", 1, cl)
	var infos []FrameInfo
	m.OnFrame(func(fi FrameInfo) { infos = append(infos, fi) })
	s.RequestFrame()
	m.VSync(0, 60)
	s.RequestFrame()
	m.VSync(sim.Hz(60), 60)
	if len(infos) != 2 {
		t.Fatalf("frames = %d, want 2", len(infos))
	}
	// Second frame: no dirty pixels (redundant) but full render cost.
	if infos[1].DirtyPixels != 0 {
		t.Errorf("redundant frame dirty = %d, want 0", infos[1].DirtyPixels)
	}
	if infos[1].RenderedPx != 64 {
		t.Errorf("redundant frame rendered = %d, want 64", infos[1].RenderedPx)
	}
}

func TestZOrderComposition(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, 8, 8)
	bottom := &countingClient{color: framebuffer.RGB(1, 0, 0), area: framebuffer.R(0, 0, 8, 8)}
	top := &countingClient{color: framebuffer.RGB(2, 0, 0), area: framebuffer.R(0, 0, 4, 4)}
	sb := m.NewSurface("bottom", 0, bottom)
	stp := m.NewSurfaceAt("top", 10, framebuffer.R(0, 0, 4, 4), top)
	sb.RequestFrame()
	stp.RequestFrame()
	m.VSync(0, 60)
	if m.Framebuffer().At(1, 1) != framebuffer.RGB(2, 0, 0) {
		t.Error("top surface not composed above bottom")
	}
	if m.Framebuffer().At(6, 6) != framebuffer.RGB(1, 0, 0) {
		t.Error("bottom surface missing outside top's bounds")
	}
}

func TestVSyncCapWithPanel(t *testing.T) {
	// An app requesting frames at 60 fps against a 20 Hz panel renders at
	// most 20 times per second — the V-Sync cap.
	eng := sim.NewEngine()
	p, err := display.NewPanel(eng, display.Config{Levels: display.GalaxyS3Levels, InitialRate: 20})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(eng, 16, 16)
	p.OnVSync(m.VSync)
	cl := &countingClient{color: framebuffer.White, area: framebuffer.R(0, 0, 16, 16)}
	s := m.NewSurface("app", 1, cl)
	eng.Every(0, sim.Hz(60), s.RequestFrame) // 60 fps of requests
	p.Start()
	eng.RunUntil(10 * sim.Second)
	renders := float64(s.Renders()) / 10
	if renders < 19 || renders > 21 {
		t.Errorf("render rate = %v fps at 20 Hz panel, want ≈20", renders)
	}
	reqs := float64(s.Requests()) / 10
	if reqs < 59 || reqs > 61 {
		t.Errorf("request rate = %v fps, want ≈60", reqs)
	}
}

func TestNilClientPanics(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("nil client accepted")
		}
	}()
	m.NewSurface("bad", 0, nil)
}

func TestClientFuncAdapter(t *testing.T) {
	called := false
	var c Client = ClientFunc(func(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int) {
		called = true
		return framebuffer.Rect{}, 0
	})
	c.Render(0, framebuffer.New(1, 1))
	if !called {
		t.Error("ClientFunc did not dispatch")
	}
}

// regionClient damages two disjoint rects per frame.
type regionClient struct {
	region framebuffer.Region
	calls  int
}

func (c *regionClient) Render(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int) {
	r, px := c.RenderRegion(t, buf)
	return r.Bounds(), px
}

func (c *regionClient) RenderRegion(t sim.Time, buf *framebuffer.Buffer) (*framebuffer.Region, int) {
	c.calls++
	c.region.Reset()
	a := framebuffer.R(0, 0, 2, 2)
	b := framebuffer.R(10, 10, 12, 12)
	buf.Fill(a, framebuffer.Color(c.calls))
	buf.Fill(b, framebuffer.Color(c.calls+100))
	c.region.Add(a)
	c.region.Add(b)
	return &c.region, c.region.Area()
}

func TestRegionClientDisjointDamage(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, 16, 16)
	cl := &regionClient{}
	s := m.NewSurface("r", 1, cl)
	var infos []FrameInfo
	m.OnFrame(func(fi FrameInfo) { infos = append(infos, fi) })
	s.RequestFrame()
	m.VSync(0, 60) // first frame: full compose
	s.RequestFrame()
	m.VSync(sim.Hz(60), 60)
	if len(infos) != 2 {
		t.Fatalf("frames = %d", len(infos))
	}
	// Second frame: exactly the two 2x2 rects, not their 12x12 bounding box.
	if infos[1].DirtyPixels != 8 {
		t.Errorf("dirty = %d, want 8 (two 2x2 rects)", infos[1].DirtyPixels)
	}
	// Both rects reached the framebuffer.
	if m.Framebuffer().At(0, 0) != framebuffer.Color(2) || m.Framebuffer().At(10, 10) != framebuffer.Color(102) {
		t.Error("region rects not composed")
	}
	// Pixels between the rects untouched.
	if m.Framebuffer().At(5, 5) != framebuffer.Black {
		t.Error("pixel outside region modified")
	}
}

func TestLatchGateDefersFrames(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, 8, 8)
	cl := &countingClient{color: framebuffer.White, area: framebuffer.R(0, 0, 8, 8)}
	s := m.NewSurface("app", 1, cl)
	allow := false
	m.SetLatchGate(func(t sim.Time) bool { return allow })
	s.RequestFrame()
	m.VSync(0, 60)
	if cl.renders != 0 || m.DeferredLatches() != 1 {
		t.Fatalf("gated vsync rendered %d, deferred %d", cl.renders, m.DeferredLatches())
	}
	// The request survives and latches once the gate opens.
	allow = true
	m.VSync(sim.Hz(60), 60)
	if cl.renders != 1 {
		t.Errorf("renders = %d after gate opened, want 1", cl.renders)
	}
	// Gate is not consulted with no pending work.
	m.SetLatchGate(func(ts sim.Time) bool { t.Errorf("gate consulted while idle"); return true })
	m.VSync(2*sim.Hz(60), 60)
}
