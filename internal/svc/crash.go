// Deterministic crash injection for shard workers: the test and chaos
// harnesses need a real subprocess to die at a chosen point — not a
// mock — so resilience claims are proven against actual SIGKILL
// delivery, exit statuses, and truncated pipes. A worker consults the
// CCDEM_SVC_CRASH environment variable and, when the plan targets its
// shard, kills itself at the requested device index or truncates its
// stdout document. Plans are one-shot when an arming file is given:
// whichever attempt removes the file first crashes, retries run clean —
// which is exactly the transient fault the retry layer exists for.
package svc

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// CrashEnv is the environment variable carrying a worker crash plan:
//
//	CCDEM_SVC_CRASH="shard=<i>,after=<n>,mode=<kill|exit:<code>|truncate:<bytes>>[,file=<path>]"
//
// shard selects the target shard index; after is the completed-device
// count at which the crash fires (kill/exit modes); mode picks SIGKILL,
// os.Exit(code), or truncating the stdout shard document to <bytes>
// bytes; file, when set, makes the plan one-shot — the first worker to
// remove it crashes, later attempts run clean.
const CrashEnv = "CCDEM_SVC_CRASH"

type crashMode int

const (
	crashKill crashMode = iota
	crashExit
	crashTruncate
)

type crashPlan struct {
	shard    int
	after    int
	mode     crashMode
	exitCode int
	truncate int
	file     string
}

// parseCrashPlan parses a CCDEM_SVC_CRASH value. Empty means no plan; a
// malformed plan is an error — a chaos harness with a typo must fail
// loudly, not silently run a clean campaign and "pass".
func parseCrashPlan(s string) (*crashPlan, error) {
	if s == "" {
		return nil, nil
	}
	plan := &crashPlan{shard: -1, after: -1}
	modeSet := false
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("svc: crash plan: %q is not key=value", kv)
		}
		switch key {
		case "shard":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("svc: crash plan: bad shard %q", val)
			}
			plan.shard = n
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("svc: crash plan: bad after %q", val)
			}
			plan.after = n
		case "mode":
			modeSet = true
			switch {
			case val == "kill":
				plan.mode = crashKill
			case strings.HasPrefix(val, "exit:"):
				n, err := strconv.Atoi(val[len("exit:"):])
				if err != nil || n < 1 || n > 255 {
					return nil, fmt.Errorf("svc: crash plan: bad exit code in %q", val)
				}
				plan.mode, plan.exitCode = crashExit, n
			case strings.HasPrefix(val, "truncate:"):
				n, err := strconv.Atoi(val[len("truncate:"):])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("svc: crash plan: bad truncate size in %q", val)
				}
				plan.mode, plan.truncate = crashTruncate, n
			default:
				return nil, fmt.Errorf("svc: crash plan: unknown mode %q", val)
			}
		case "file":
			plan.file = val
		default:
			return nil, fmt.Errorf("svc: crash plan: unknown key %q", key)
		}
	}
	if plan.shard < 0 {
		return nil, fmt.Errorf("svc: crash plan: missing shard=")
	}
	if !modeSet {
		return nil, fmt.Errorf("svc: crash plan: missing mode=")
	}
	if plan.mode != crashTruncate && plan.after < 0 {
		return nil, fmt.Errorf("svc: crash plan: missing after= for kill/exit mode")
	}
	return plan, nil
}

// armed reports whether this worker should execute the plan. A plan
// without an arming file always fires; with one, only the process that
// wins the os.Remove claims the crash.
func (p *crashPlan) armed() bool {
	if p.file == "" {
		return true
	}
	return os.Remove(p.file) == nil
}

// fire executes a kill/exit plan. It never returns.
func (p *crashPlan) fire() {
	switch p.mode {
	case crashKill:
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		// SIGKILL is not deliverable to a handler; if we are somehow
		// still running, fall through to a hard exit.
		os.Exit(137)
	case crashExit:
		os.Exit(p.exitCode)
	}
	panic("svc: crash plan fired with non-terminal mode")
}
