package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"ccdem/internal/buildinfo"
)

// maxSpecBytes bounds a submitted job document. Campaign specs are a few
// KB of JSON; anything near this limit is abuse, not a cohort.
const maxSpecBytes = 1 << 20

// Handler builds the daemon's HTTP API around a Manager:
//
//	GET    /healthz                 liveness ("ok", 503 once shutting down)
//	GET    /version                 build identity JSON
//	GET    /metrics                 Prometheus text exposition (0.0.4)
//	GET    /api/metrics             plain-text metrics dump (legacy)
//	POST   /api/jobs                submit a campaign (202 + progress)
//	GET    /api/jobs                list all jobs' progress
//	GET    /api/jobs/{id}           one job's progress
//	DELETE /api/jobs/{id}           request cancellation
//	GET    /api/jobs/{id}/result    merged result JSON (409 until terminal)
//	GET    /api/jobs/{id}/trace     campaign Perfetto trace (409 until terminal)
//	GET    /api/jobs/{id}/watch     SSE progress stream until terminal
//
// Every response carries Cache-Control: no-store — all of the daemon's
// surfaces report live state, so a cached body is a stale lie.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-m.Closing():
			httpError(w, http.StatusServiceUnavailable, "shutting down")
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		}
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, buildinfo.Get())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	mux.HandleFunc("GET /api/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		m.WriteMetrics(w)
	})
	mux.HandleFunc("POST /api/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "parsing job: %v", err)
			return
		}
		if _, err := dec.Token(); err != io.EOF {
			httpError(w, http.StatusBadRequest, "parsing job: trailing data after document")
			return
		}
		job, err := m.Submit(spec)
		switch {
		case errors.Is(err, ErrShuttingDown):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		w.Header().Set("Location", "/api/jobs/"+job.ID())
		writeJSON(w, http.StatusAccepted, job.Progress())
	})
	mux.HandleFunc("GET /api/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		list := make([]Progress, len(jobs))
		for i, j := range jobs {
			list[i] = j.Progress()
		}
		writeJSON(w, http.StatusOK, list)
	})
	mux.HandleFunc("GET /api/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, job.Progress())
	})
	mux.HandleFunc("DELETE /api/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		err := m.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrUnknownJob):
			httpError(w, http.StatusNotFound, "%v", err)
			return
		case err != nil:
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		job, _ := m.Job(r.PathValue("id"))
		writeJSON(w, http.StatusAccepted, job.Progress())
	})
	mux.HandleFunc("GET /api/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		p := job.Progress()
		result, have := job.Result()
		if !have {
			if !p.State.Terminal() {
				httpError(w, http.StatusConflict, "job %s still %s", job.ID(), p.State)
				return
			}
			httpError(w, http.StatusConflict, "job %s %s: %s", job.ID(), p.State, p.Error)
			return
		}
		// The result bytes come straight from Result.WriteJSON so a sharded
		// service run is byte-comparable with ccdem-fleet -stream output.
		w.Header().Set("Content-Type", "application/json")
		perDevice := r.URL.Query().Get("per_device") == "1"
		result.WriteJSON(w, perDevice)
	})
	mux.HandleFunc("GET /api/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		if p := job.Progress(); !p.State.Terminal() {
			httpError(w, http.StatusConflict, "job %s still %s", job.ID(), p.State)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		job.WriteTrace(w)
	})
	mux.HandleFunc("GET /api/jobs/{id}/watch", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		watchJob(w, r, m, job)
	})
	return noStore(mux)
}

// noStore stamps Cache-Control: no-store on every response before the
// handler writes it.
func noStore(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		next.ServeHTTP(w, r)
	})
}

// watchJob streams SSE progress events until the job reaches a terminal
// state, the client goes away, or the manager begins shutting down.
func watchJob(w http.ResponseWriter, r *http.Request, m *Manager, job *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	updates, unsubscribe := job.Watch()
	defer unsubscribe()
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)

	emit := func(p Progress) bool {
		doc, err := json.Marshal(p)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", doc)
		flusher.Flush()
		return !p.State.Terminal()
	}
	if !emit(job.Progress()) {
		return
	}
	// The ticker backstops the fan-out: ElapsedS/ETAS move with wall
	// clock even when no device lands, and a missed coalesced update can
	// only delay a snapshot by one tick. The heartbeat ticker additionally
	// emits SSE comment frames — content-free keep-alives that hold idle
	// proxy connections open without disturbing event consumers.
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	heartbeat := time.NewTicker(m.heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case p := <-updates:
			if !emit(p) {
				return
			}
		case <-tick.C:
			if !emit(job.Progress()) {
				return
			}
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-m.Closing():
			emit(job.Progress())
			return
		}
	}
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError writes the structured error body every non-2xx response
// carries: {"error": "..."}.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
