package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ccdem/internal/obs"
)

// newTestServer wires a manager into an httptest server; cleanup shuts
// both down.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	if cfg.Runner == nil {
		cfg.Runner = LocalRunner{}
	}
	m := NewManager(cfg)
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return srv, m
}

// doJSON issues a request and decodes the response body into out (when
// non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, body []byte, out any) int {
	t.Helper()
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// submitBody builds a valid submission document around a test spec.
func submitBody(t *testing.T, devices, shards int) []byte {
	t.Helper()
	doc, err := json.Marshal(JobSpec{Spec: testSpecDoc(t, devices), Shards: shards, Workers: 2})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return doc
}

func TestHTTPSubmitValidation(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	badSpec := func(mutate string) []byte {
		// Patch one field of an otherwise valid embedded cohort spec.
		return []byte(fmt.Sprintf(`{"spec": %s}`, mutate))
	}
	cases := []struct {
		name string
		body string
		want string
	}{
		{"malformed json", `{"spec":`, "parsing job"},
		{"trailing garbage", `{"spec": {"version":1,"devices":4,"profiles":[]}} extra`, "parsing job"},
		{"unknown field", `{"bogus": 1}`, "parsing job"},
		{"missing spec", `{}`, "missing cohort spec"},
		{"empty spec", `{"spec": null}`, "missing cohort spec"},
		{"zero devices", string(badSpec(`{"version":1,"devices":0,"profiles":[]}`)), "device count"},
		{"negative devices", string(badSpec(`{"version":1,"devices":-3,"profiles":[]}`)), "device count"},
		{"bad spec version", string(badSpec(`{"version":9,"devices":4,"profiles":[]}`)), "unsupported spec version"},
		{"unknown governor", string(badSpec(`{"version":1,"devices":4,"governor":"warp","profiles":[]}`)), "unknown governor"},
		{"negative shards", `{"spec": {"version":1,"devices":4,"profiles":[]}, "shards": -1}`, "negative shard count"},
		{"shards exceed devices", `{"spec": {"version":1,"devices":4,"profiles":[]}, "shards": 5}`, "empty shards"},
		{"negative workers", `{"spec": {"version":1,"devices":4,"profiles":[]}, "workers": -1}`, "negative worker count"},
		{"negative batch", `{"spec": {"version":1,"devices":4,"profiles":[]}, "batch": -8}`, "negative batch size"},
		{"negative faults", `{"spec": {"version":1,"devices":4,"profiles":[]}, "faults": -0.5}`, "negative fault intensity"},
		{"negative timeout", `{"spec": {"version":1,"devices":4,"profiles":[]}, "task_timeout_s": -1}`, "negative task timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBody struct {
				Error string `json:"error"`
			}
			status := doJSON(t, http.MethodPost, srv.URL+"/api/jobs", []byte(tc.body), &errBody)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", status)
			}
			if errBody.Error == "" || !strings.Contains(errBody.Error, tc.want) {
				t.Fatalf("error body = %q, want containing %q", errBody.Error, tc.want)
			}
		})
	}
}

func TestHTTPUnknownJob(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	for _, tc := range []struct {
		method, path string
	}{
		{http.MethodGet, "/api/jobs/job-0042"},
		{http.MethodDelete, "/api/jobs/job-0042"},
		{http.MethodGet, "/api/jobs/job-0042/result"},
		{http.MethodGet, "/api/jobs/job-0042/watch"},
	} {
		var errBody struct {
			Error string `json:"error"`
		}
		status := doJSON(t, tc.method, srv.URL+tc.path, nil, &errBody)
		if status != http.StatusNotFound {
			t.Errorf("%s %s: status = %d, want 404", tc.method, tc.path, status)
		}
		if !strings.Contains(errBody.Error, "job-0042") {
			t.Errorf("%s %s: error body = %q, want it to name the job", tc.method, tc.path, errBody.Error)
		}
	}
}

func TestHTTPSubmitPollResult(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxJobs: 2})

	var submitted Progress
	status := doJSON(t, http.MethodPost, srv.URL+"/api/jobs", submitBody(t, 20, 2), &submitted)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if submitted.ID == "" || submitted.Devices != 20 || submitted.Shards != 2 {
		t.Fatalf("submitted progress = %+v", submitted)
	}

	var p Progress
	deadline := time.Now().Add(30 * time.Second)
	for {
		if doJSON(t, http.MethodGet, srv.URL+"/api/jobs/"+submitted.ID, nil, &p); p.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", p.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p.State != StateDone || p.Done != 20 {
		t.Fatalf("terminal progress = %+v, want done with 20 devices", p)
	}

	resp, err := http.Get(srv.URL + "/api/jobs/" + submitted.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading result: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d: %s", resp.StatusCode, got)
	}
	if want := directRunJSON(t, testSpecDoc(t, 20)); !bytes.Equal(got, want) {
		t.Errorf("service result differs from direct run:\n got: %s\nwant: %s", got, want)
	}

	var list []Progress
	if status := doJSON(t, http.MethodGet, srv.URL+"/api/jobs", nil, &list); status != http.StatusOK {
		t.Fatalf("list status = %d", status)
	}
	if len(list) != 1 || list[0].ID != submitted.ID {
		t.Fatalf("job list = %+v, want the one submitted job", list)
	}
}

func TestHTTPResultConflictWhileRunning(t *testing.T) {
	runner := newGateRunner(true)
	srv, _ := newTestServer(t, Config{Runner: runner})
	defer close(runner.release)

	var submitted Progress
	doJSON(t, http.MethodPost, srv.URL+"/api/jobs", submitBody(t, 6, 1), &submitted)
	<-runner.started

	var errBody struct {
		Error string `json:"error"`
	}
	status := doJSON(t, http.MethodGet, srv.URL+"/api/jobs/"+submitted.ID+"/result", nil, &errBody)
	if status != http.StatusConflict {
		t.Fatalf("result status while running = %d, want 409", status)
	}
	if !strings.Contains(errBody.Error, "still") {
		t.Errorf("error body = %q, want a still-running message", errBody.Error)
	}

	// Cancel over HTTP, then the result must 409 with the terminal error.
	if status := doJSON(t, http.MethodDelete, srv.URL+"/api/jobs/"+submitted.ID, nil, nil); status != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", status)
	}
	deadline := time.Now().Add(30 * time.Second)
	var p Progress
	for {
		if doJSON(t, http.MethodGet, srv.URL+"/api/jobs/"+submitted.ID, nil, &p); p.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s after cancel", p.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p.State != StateCancelled {
		t.Fatalf("state after cancel = %s", p.State)
	}
	status = doJSON(t, http.MethodGet, srv.URL+"/api/jobs/"+submitted.ID+"/result", nil, &errBody)
	if status != http.StatusConflict || !strings.Contains(errBody.Error, "cancelled") {
		t.Fatalf("result after cancel: status %d body %q, want 409 naming cancelled", status, errBody.Error)
	}
}

func TestHTTPHealthVersionMetrics(t *testing.T) {
	srv, m := newTestServer(t, Config{})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}

	var version struct {
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
	}
	if status := doJSON(t, http.MethodGet, srv.URL+"/version", nil, &version); status != http.StatusOK {
		t.Fatalf("version status = %d", status)
	}
	if version.Version == "" || !strings.HasPrefix(version.GoVersion, "go") {
		t.Fatalf("version body = %+v", version)
	}

	resp, err = http.Get(srv.URL + "/api/metrics")
	if err != nil {
		t.Fatalf("GET /api/metrics: %v", err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(metricsBody), "svc.jobs.submitted") {
		t.Fatalf("metrics = %d %q, want the jobs counters", resp.StatusCode, metricsBody)
	}

	// Once shutdown begins the daemon reports itself unhealthy and
	// refuses new jobs with 503.
	m.BeginShutdown()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz after shutdown: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown = %d, want 503", resp.StatusCode)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	status := doJSON(t, http.MethodPost, srv.URL+"/api/jobs", submitBody(t, 4, 1), &errBody)
	if status != http.StatusServiceUnavailable || !strings.Contains(errBody.Error, "shutting down") {
		t.Fatalf("submit after shutdown: %d %q, want 503 shutting down", status, errBody.Error)
	}
}

// TestHTTPResponseHeaders pins the daemon's header contract: every
// endpoint declares its Content-Type and forbids caching — all surfaces
// report live state.
func TestHTTPResponseHeaders(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	var submitted Progress
	doJSON(t, http.MethodPost, srv.URL+"/api/jobs", submitBody(t, 4, 1), &submitted)

	cases := []struct {
		path string
		ct   string
	}{
		{"/healthz", "text/plain; charset=utf-8"},
		{"/version", "application/json"},
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/api/metrics", "text/plain; charset=utf-8"},
		{"/api/jobs", "application/json"},
		{"/api/jobs/" + submitted.ID, "application/json"},
	}
	for _, tc := range cases {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != tc.ct {
			t.Errorf("%s Content-Type = %q, want %q", tc.path, got, tc.ct)
		}
		if got := resp.Header.Get("Cache-Control"); got != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", tc.path, got)
		}
	}
}

// TestHTTPMetricsPrometheus scrapes /metrics after a finished campaign
// and holds the body to the exposition format via the in-repo parser.
func TestHTTPMetricsPrometheus(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	var submitted Progress
	doJSON(t, http.MethodPost, srv.URL+"/api/jobs", submitBody(t, 8, 2), &submitted)
	var p Progress
	deadline := time.Now().Add(30 * time.Second)
	for {
		if doJSON(t, http.MethodGet, srv.URL+"/api/jobs/"+submitted.ID, nil, &p); p.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", p.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	for name, typ := range map[string]string{
		"svc_jobs_submitted_total": "counter",
		"svc_devices_done_total":   "counter",
		"svc_jobs_running":         "gauge",
		"svc_job_duration_s":       "histogram",
		"ccdem_build_info":         "gauge",
	} {
		f := fams[name]
		if f == nil || f.Type != typ {
			t.Errorf("family %s missing or wrong type: %+v", name, f)
		}
	}
	if s := fams["svc_devices_done_total"].Sample("svc_devices_done_total", nil); s == nil || s.Value != 8 {
		t.Errorf("svc_devices_done_total = %+v, want 8", s)
	}
	if f := fams["svc_job_state"]; f == nil ||
		f.Sample("svc_job_state", map[string]string{"job": submitted.ID, "state": string(p.State)}) == nil {
		t.Errorf("per-job state series missing for %s/%s", submitted.ID, p.State)
	}
	if f := fams["svc_job_devices_done"]; f == nil ||
		f.Sample("svc_job_devices_done", map[string]string{"job": submitted.ID}) == nil {
		t.Errorf("per-job devices-done series missing for %s", submitted.ID)
	}
}

// TestHTTPWatchHeartbeat holds a job open behind a gate and requires the
// watch stream to carry SSE comment keep-alives at the configured
// interval, then a terminal progress event once released.
func TestHTTPWatchHeartbeat(t *testing.T) {
	runner := newGateRunner(true)
	srv, _ := newTestServer(t, Config{Runner: runner, WatchHeartbeat: 25 * time.Millisecond})

	var submitted Progress
	doJSON(t, http.MethodPost, srv.URL+"/api/jobs", submitBody(t, 6, 1), &submitted)
	<-runner.started

	resp, err := http.Get(srv.URL + "/api/jobs/" + submitted.ID + "/watch")
	if err != nil {
		t.Fatalf("GET watch: %v", err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	heartbeats := 0
	for heartbeats < 2 {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("watch stream ended before two heartbeats: %v", err)
		}
		if strings.HasPrefix(line, ": heartbeat") {
			heartbeats++
		}
	}
	close(runner.release)
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("draining watch stream: %v", err)
	}
	var last Progress
	for _, line := range strings.Split(strings.TrimSpace(string(rest)), "\n") {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			json.Unmarshal([]byte(data), &last)
		}
	}
	if last.State != StateDone {
		t.Fatalf("stream after release ended on %+v, want done", last)
	}
}

func TestHTTPWatchStreamsProgress(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	var submitted Progress
	doJSON(t, http.MethodPost, srv.URL+"/api/jobs", submitBody(t, 12, 2), &submitted)

	// The watch handler holds the stream open until the job is terminal,
	// so reading the whole body captures the full event sequence.
	resp, err := http.Get(srv.URL + "/api/jobs/" + submitted.ID + "/watch")
	if err != nil {
		t.Fatalf("GET watch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading watch stream: %v", err)
	}
	events := strings.Count(string(body), "event: progress")
	if events < 1 {
		t.Fatalf("watch stream carried %d events: %q", events, body)
	}
	var last Progress
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if data, ok := strings.CutPrefix(lines[i], "data: "); ok {
			if err := json.Unmarshal([]byte(data), &last); err != nil {
				t.Fatalf("decoding last event %q: %v", data, err)
			}
			break
		}
	}
	if last.State != StateDone || last.Done != 12 {
		t.Fatalf("last watch event = %+v, want done with 12 devices", last)
	}
}
