package svc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"ccdem/internal/fleet"
	"ccdem/internal/obs"
)

// State is a job's lifecycle position. Transitions only move forward:
// queued → running → one of the three terminal states.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Stage names for the per-job wall-clock timings in Progress.StageS.
const (
	StageRun   = "run"   // start of the shard fan-out to the last shard's return
	StageMerge = "merge" // central shard merge
)

// Progress is one job's live status snapshot — what GET /api/jobs/{id}
// returns and what the watch stream fans out on every update.
type Progress struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	State State  `json:"state"`
	// Devices is the campaign's cohort size; Done counts devices whose
	// simulation finished (survivors and failures alike); FailedDevices
	// counts failures, reported as their shards complete.
	Devices       int `json:"devices"`
	Done          int `json:"done"`
	FailedDevices int `json:"failed_devices"`
	// Shards/ShardsDone track whole worker runs.
	Shards     int `json:"shards"`
	ShardsDone int `json:"shards_done"`
	// ElapsedS is wall-clock seconds since the job started running (total
	// runtime once terminal). ETAS estimates remaining seconds from the
	// observed completion rate; 0 until the first device lands.
	ElapsedS float64 `json:"elapsed_s"`
	ETAS     float64 `json:"eta_s,omitempty"`
	// StageS holds completed stage wall timings (StageRun, StageMerge) in
	// seconds; CPUS is total worker-subprocess CPU seconds (0 when the
	// runner can't observe CPU, e.g. in-process runs).
	StageS map[string]float64 `json:"stage_s,omitempty"`
	CPUS   float64            `json:"cpu_s,omitempty"`
	// Retries counts shard attempts that failed and were re-dispatched;
	// ResumedShards counts shards restored from a checkpoint instead of
	// re-run after a daemon restart.
	Retries       int    `json:"retries,omitempty"`
	ResumedShards int    `json:"resumed_shards,omitempty"`
	Error         string `json:"error,omitempty"`
}

// Job is one submitted campaign tracked by the Manager. All state is
// guarded by mu; snapshots (Progress) are safe from any goroutine.
type Job struct {
	id      string
	spec    JobSpec
	devices int
	shards  int
	created time.Time

	cancel context.CancelFunc // cancels the job's run context

	// Fault-tolerance state: specHash pins the job's identity for
	// checkpointing, ckpt accumulates completed shards in completion
	// order (guarded by ckptMu, not mu — folding a shard is heavier than
	// a progress snapshot), sinceCkpt counts completions since the last
	// persisted checkpoint.
	specHash  string
	ckpt      *fleet.Checkpoint
	ckptMu    sync.Mutex
	sinceCkpt int

	mu              sync.Mutex
	state           State
	errMsg          string
	started         time.Time
	finished        time.Time
	shardDone       []int // per-shard completed-device counts
	failedDevices   int
	shardsDone      int
	retries         int
	resumedShards   int
	cancelRequested bool
	result          *fleet.Result
	subs            map[chan Progress]struct{}

	// Telemetry, all on the job timeline (durations since started):
	// daemonSpans holds the daemon-side dispatch/merge spans, workerSpans
	// the per-shard worker span batches (already offset by their dispatch
	// start), stageS the completed stage wall timings, cpu the total
	// worker CPU the runner observed.
	daemonSpans []obs.Span
	workerSpans [][]obs.Span
	stageS      map[string]float64
	cpu         time.Duration
}

func newJob(id string, spec JobSpec, devices int, now time.Time) *Job {
	return &Job{
		id:          id,
		spec:        spec,
		devices:     devices,
		shards:      spec.shards(),
		created:     now,
		state:       StateQueued,
		shardDone:   make([]int, spec.shards()),
		subs:        make(map[chan Progress]struct{}),
		workerSpans: make([][]obs.Span, spec.shards()),
		stageS:      make(map[string]float64),
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Result returns the merged campaign result once the job is done.
func (j *Job) Result() (*fleet.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.result != nil
}

// Progress takes a status snapshot.
func (j *Job) Progress() Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progressLocked()
}

func (j *Job) progressLocked() Progress {
	p := Progress{
		ID:            j.id,
		Label:         j.spec.Label,
		State:         j.state,
		Devices:       j.devices,
		FailedDevices: j.failedDevices,
		Shards:        j.shards,
		ShardsDone:    j.shardsDone,
		Retries:       j.retries,
		ResumedShards: j.resumedShards,
		Error:         j.errMsg,
	}
	for _, d := range j.shardDone {
		p.Done += d
	}
	if len(j.stageS) > 0 {
		p.StageS = make(map[string]float64, len(j.stageS))
		for k, v := range j.stageS {
			p.StageS[k] = v
		}
	}
	p.CPUS = j.cpu.Seconds()
	if !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		p.ElapsedS = end.Sub(j.started).Seconds()
		if j.state == StateRunning && p.Done > 0 && p.Done < j.devices {
			p.ETAS = p.ElapsedS / float64(p.Done) * float64(j.devices-p.Done)
		}
	}
	return p
}

// Watch subscribes to the job's progress fan-out. The returned channel
// carries coalesced snapshots: a slow watcher sees the latest state, not
// a backlog. cancel unsubscribes; the channel is never closed, so reads
// must select against done conditions (snapshot.State.Terminal()).
func (j *Job) Watch() (<-chan Progress, func()) {
	ch := make(chan Progress, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
	return ch, cancel
}

// notifyLocked fans the current snapshot out to every watcher,
// latest-wins: a full buffer is drained before the fresh snapshot goes
// in, so no subscriber ever blocks the job.
func (j *Job) notifyLocked() {
	p := j.progressLocked()
	for ch := range j.subs {
		select {
		case ch <- p:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- p:
			default:
			}
		}
	}
}

// setRunning marks the job started.
func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return
	}
	j.state = StateRunning
	j.started = now
	j.notifyLocked()
}

// sinceStart returns the job-timeline offset of "now" — time since the
// job started running (0 while still queued).
func (j *Job) sinceStart() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() {
		return 0
	}
	return time.Since(j.started)
}

// recordShard records one finished shard's telemetry: a daemon-side
// "dispatch" span covering the whole RunShard call (one lane per shard),
// the worker's own span batch shifted onto the job timeline, and the
// worker CPU time.
func (j *Job) recordShard(index int, res ShardResult, start, end time.Duration) {
	spans := make([]obs.Span, len(res.Shard.Spans))
	for k, s := range res.Shard.Spans {
		s.Start += start
		s.End += start
		spans[k] = s
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.daemonSpans = append(j.daemonSpans, obs.Span{Name: "dispatch", Worker: index, Start: start, End: end})
	// Failed attempts a RetryRunner burned before this success show up as
	// daemon-side lanes next to the dispatch span.
	for _, s := range res.AttemptSpans {
		s.Start += start
		s.End += start
		j.daemonSpans = append(j.daemonSpans, s)
	}
	j.workerSpans[index] = spans
	j.cpu += res.CPU
}

// noteRetry counts one re-dispatched shard attempt.
func (j *Job) noteRetry() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.retries++
	j.notifyLocked()
}

// userCancelled reports whether cancellation was requested through the
// API (vs the shutdown sweep) — the distinction that decides whether the
// job's persisted state is removed or kept for resume.
func (j *Job) userCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// markResumed pre-fills progress for shards restored from a checkpoint:
// their device counts are complete before the job's first dispatch.
func (j *Job) markResumed(shardDevices map[int]int, failedDevices int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for shard, devices := range shardDevices {
		j.shardDone[shard] = devices
		j.shardsDone++
		j.resumedShards++
	}
	j.failedDevices = failedDevices
}

// recordStage records one completed stage's wall timing.
func (j *Job) recordStage(stage string, seconds float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stageS[stage] = seconds
	j.notifyLocked()
}

// recordMerge records the central merge as both a daemon span and a
// stage timing.
func (j *Job) recordMerge(start, end time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.daemonSpans = append(j.daemonSpans, obs.Span{Name: "merge", Worker: 0, Start: start, End: end})
	j.stageS[StageMerge] = (end - start).Seconds()
	j.notifyLocked()
}

// WriteTrace writes the job's campaign trace as Chrome trace-event JSON:
// pid 1 is the daemon (dispatch lanes per shard plus the merge), pid 2+i
// is shard i's worker with the spans it recorded about itself ("run",
// "encode"), all on one wall-clock timeline starting at the job's run
// start.
func (j *Job) WriteTrace(w io.Writer) error {
	j.mu.Lock()
	daemon := append([]obs.Span(nil), j.daemonSpans...)
	workers := make([][]obs.Span, len(j.workerSpans))
	copy(workers, j.workerSpans)
	j.mu.Unlock()
	tr := obs.NewTrace()
	tr.AddSpans(1, "ccdem-svc "+j.id, daemon)
	for i, spans := range workers {
		tr.AddSpans(2+i, fmt.Sprintf("%s shard %d", j.id, i), spans)
	}
	return tr.Write(w)
}

// shardProgress records shard's cumulative completed-device count and
// returns the delta since the last report (for manager-level metrics).
func (j *Job) shardProgress(shard, done int) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	delta := done - j.shardDone[shard]
	if delta <= 0 {
		return 0
	}
	j.shardDone[shard] = done
	j.notifyLocked()
	return delta
}

// shardFinished records one shard's completion and its failure count.
func (j *Job) shardFinished(failed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.shardsDone++
	j.failedDevices += failed
	j.notifyLocked()
}

// requestCancel flags the job as user-cancelled and cancels its run
// context. Terminal jobs are left untouched.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelRequested = true
	j.mu.Unlock()
	j.cancel()
	return true
}

// finish moves the job to its terminal state.
func (j *Job) finish(result *fleet.Result, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.finished = now
	if j.started.IsZero() {
		j.started = now
	}
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		j.failedDevices = len(result.Failed)
	case j.cancelRequested || errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.notifyLocked()
}
