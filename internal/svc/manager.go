package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"ccdem/internal/buildinfo"
	"ccdem/internal/fleet"
	"ccdem/internal/obs"
)

// ErrShuttingDown rejects submissions once shutdown has begun.
var ErrShuttingDown = errors.New("svc: shutting down")

// ErrUnknownJob reports a job ID the manager has never issued.
var ErrUnknownJob = errors.New("svc: unknown job")

// Config configures a Manager.
type Config struct {
	// Runner executes shard runs. Required (LocalRunner{} for in-process).
	Runner Runner
	// MaxJobs bounds how many campaigns run concurrently; further
	// submissions queue. 0 means 1.
	MaxJobs int
	// Logger receives the service's structured log stream (job lifecycle,
	// relayed worker records). Nil disables logging.
	Logger *slog.Logger
	// WatchHeartbeat is the interval between SSE comment frames on watch
	// streams — proxy keep-alives independent of progress traffic. 0 means
	// 15 seconds.
	WatchHeartbeat time.Duration
	// Retry bounds per-shard retry/re-dispatch (zero values mean the
	// RetryPolicy defaults: 3 attempts, 200ms..5s backoff).
	Retry RetryPolicy
	// Store, when non-nil, persists submitted specs and campaign
	// checkpoints so incomplete jobs survive a daemon crash (Recover).
	Store *Store
	// CheckpointEvery is how many completed shards between checkpoint
	// writes when Store is set. <=0 means 1 (every shard).
	CheckpointEvery int
}

// defaultWatchHeartbeat keeps idle SSE connections alive through
// proxies with conservative idle timeouts.
const defaultWatchHeartbeat = 15 * time.Second

// Manager owns the service's job table: it admits campaign specs,
// schedules them through a bounded semaphore, fans shard runs out to the
// Runner, merges shard accumulators in shard order, and tracks live
// progress plus obs metrics for every job.
type Manager struct {
	runner    Runner
	retry     RetryPolicy
	store     *Store
	ckptEvery int
	sem       chan struct{}
	metrics   *metrics
	logger    *slog.Logger
	heartbeat time.Duration

	ctx     context.Context // parent of every job context
	stopAll context.CancelFunc
	closing chan struct{}
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	seq    int
	jobs   map[string]*Job
	order  []string
}

// metrics is the manager's obs registry surface: campaign and device
// counters, the running-jobs gauge, and a job-duration histogram. obs
// instruments are single-goroutine by design (per-device registries,
// merged after the run); here many job and shard goroutines update one
// registry, so every touch — including the /api/metrics dump — goes
// through mu.
type metrics struct {
	mu  sync.Mutex
	reg *obs.Registry

	submitted *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter

	devicesDone   *obs.Counter
	devicesFailed *obs.Counter

	running  *obs.Gauge
	duration *obs.Histogram

	// retries counts re-dispatched shard attempts per error class,
	// exported as the labeled svc_shard_retries_total family. Kept out
	// of the registry (which has no labeled counters) but under the
	// same mu.
	retries map[ErrorClass]uint64
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg:           reg,
		submitted:     reg.Counter("svc.jobs.submitted"),
		rejected:      reg.Counter("svc.jobs.rejected"),
		completed:     reg.Counter("svc.jobs.completed"),
		failed:        reg.Counter("svc.jobs.failed"),
		cancelled:     reg.Counter("svc.jobs.cancelled"),
		devicesDone:   reg.Counter("svc.devices.done"),
		devicesFailed: reg.Counter("svc.devices.failed"),
		running:       reg.Gauge("svc.jobs.running"),
		duration:      reg.Histogram("svc.job.duration_s", []float64{1, 5, 15, 60, 300, 1800, 7200}),
	}
}

func (mx *metrics) noteRetry(class ErrorClass) {
	mx.mu.Lock()
	if mx.retries == nil {
		mx.retries = make(map[ErrorClass]uint64)
	}
	mx.retries[class]++
	mx.mu.Unlock()
}

func (mx *metrics) retrySnapshot() map[ErrorClass]uint64 {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	out := make(map[ErrorClass]uint64, len(mx.retries))
	for k, v := range mx.retries {
		out[k] = v
	}
	return out
}

func (mx *metrics) inc(c *obs.Counter) {
	mx.mu.Lock()
	c.Inc()
	mx.mu.Unlock()
}

func (mx *metrics) add(c *obs.Counter, n uint64) {
	mx.mu.Lock()
	c.Add(n)
	mx.mu.Unlock()
}

func (mx *metrics) count(c *obs.Counter) uint64 {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	return c.Value()
}

func (mx *metrics) setGauge(g *obs.Gauge, v float64) {
	mx.mu.Lock()
	g.Set(v)
	mx.mu.Unlock()
}

func (mx *metrics) observe(h *obs.Histogram, v float64) {
	mx.mu.Lock()
	h.Observe(v)
	mx.mu.Unlock()
}

func (mx *metrics) write(w io.Writer) error {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	return mx.reg.WriteText(w)
}

// NewManager builds a manager ready to accept jobs.
func NewManager(cfg Config) *Manager {
	maxJobs := cfg.MaxJobs
	if maxJobs < 1 {
		maxJobs = 1
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	heartbeat := cfg.WatchHeartbeat
	if heartbeat <= 0 {
		heartbeat = defaultWatchHeartbeat
	}
	ckptEvery := cfg.CheckpointEvery
	if ckptEvery < 1 {
		ckptEvery = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		runner:    cfg.Runner,
		retry:     cfg.Retry,
		store:     cfg.Store,
		ckptEvery: ckptEvery,
		sem:       make(chan struct{}, maxJobs),
		metrics:   newMetrics(),
		logger:    logger,
		heartbeat: heartbeat,
		ctx:       ctx,
		stopAll:   cancel,
		closing:   make(chan struct{}),
		jobs:      make(map[string]*Job),
	}
}

// WriteMetrics dumps the manager's registry (GET /api/metrics).
func (m *Manager) WriteMetrics(w io.Writer) error { return m.metrics.write(w) }

// WritePrometheus writes the manager's registry in Prometheus text
// exposition format (GET /metrics), followed by the service-level
// families the registry doesn't hold: build identity and per-job series
// labeled by job ID.
func (m *Manager) WritePrometheus(w io.Writer) error {
	m.metrics.mu.Lock()
	err := m.metrics.reg.WritePrometheus(w)
	m.metrics.mu.Unlock()
	if err != nil {
		return err
	}
	pw := obs.NewPromWriter(w)
	bi := buildinfo.Get()
	pw.Family("ccdem_build_info", "gauge", "build identity of the running daemon")
	pw.Sample("ccdem_build_info", [][2]string{
		{"version", bi.Version}, {"go", bi.GoVersion}, {"revision", bi.Revision},
	}, 1)
	if retries := m.metrics.retrySnapshot(); len(retries) > 0 {
		classes := make([]string, 0, len(retries))
		for class := range retries {
			classes = append(classes, string(class))
		}
		sort.Strings(classes)
		pw.Family("svc_shard_retries_total", "counter", "shard attempts re-dispatched after a classified failure")
		for _, class := range classes {
			pw.Sample("svc_shard_retries_total", [][2]string{{"class", class}}, float64(retries[ErrorClass(class)]))
		}
	}
	jobs := m.Jobs()
	if len(jobs) > 0 {
		snaps := make([]Progress, len(jobs))
		for i, j := range jobs {
			snaps[i] = j.Progress()
		}
		pw.Family("svc_job_state", "gauge", "job lifecycle state (1 = the labeled state is current)")
		for _, p := range snaps {
			pw.Sample("svc_job_state", [][2]string{{"job", p.ID}, {"state", string(p.State)}}, 1)
		}
		pw.Family("svc_job_devices_done", "gauge", "devices completed per job")
		for _, p := range snaps {
			pw.Sample("svc_job_devices_done", [][2]string{{"job", p.ID}}, float64(p.Done))
		}
		pw.Family("svc_job_devices_failed", "gauge", "devices failed per job")
		for _, p := range snaps {
			pw.Sample("svc_job_devices_failed", [][2]string{{"job", p.ID}}, float64(p.FailedDevices))
		}
	}
	return pw.Err()
}

// Closing is closed when shutdown begins — the lever long-lived watch
// handlers select on so they cannot wedge the HTTP server's drain.
func (m *Manager) Closing() <-chan struct{} { return m.closing }

// Submit validates and admits a campaign. The job runs asynchronously;
// the returned Job is live immediately (queued until a slot frees up).
// With a Store configured, the spec document is journaled before the job
// is admitted — a journal failure rejects the submission rather than
// running a campaign that could not survive a daemon crash.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	cohort, err := spec.cohort()
	if err != nil {
		m.metrics.inc(m.metrics.rejected)
		m.logger.Warn("job rejected", "error", err.Error())
		return nil, err
	}
	specDoc, err := json.Marshal(spec)
	if err != nil {
		m.metrics.inc(m.metrics.rejected)
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.metrics.inc(m.metrics.rejected)
		m.logger.Warn("job rejected", "error", ErrShuttingDown.Error())
		return nil, ErrShuttingDown
	}
	m.seq++
	id := fmt.Sprintf("job-%04d", m.seq)
	if m.store != nil {
		if err := m.store.JournalSpec(id, specDoc); err != nil {
			m.mu.Unlock()
			m.metrics.inc(m.metrics.rejected)
			m.logger.Error("job rejected: spec journal write failed", "error", err.Error())
			return nil, err
		}
	}
	job := newJob(id, spec, cohort.Devices, time.Now())
	job.specHash = SpecHash(specDoc)
	job.ckpt = fleet.NewCheckpoint(job.specHash, buildinfo.Get().Version, spec.shards())
	jctx, cancel := context.WithCancel(m.ctx)
	job.cancel = cancel
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	m.metrics.inc(m.metrics.submitted)
	m.logger.Info("job submitted",
		"job", id, "label", spec.Label, "devices", cohort.Devices, "shards", spec.shards())
	go m.runJob(jctx, job)
	return job, nil
}

// Recover re-admits incomplete jobs from the store — the daemon restart
// path after a crash or kill -9. Every journaled spec becomes a live job
// with its original ID; a valid checkpoint pre-fills the completed-shard
// set so only the remaining shards run (and the merged result is still
// byte-identical — the accumulator is integral, so merge order cannot
// matter). A checkpoint that fails any validation — decode/CRC, spec
// hash, code version, shard count, cohort size — is discarded with a
// structured log record and the job restarts from scratch: a suspect
// prefix is never merged. Returns the number of jobs re-admitted.
func (m *Manager) Recover() (int, error) {
	if m.store == nil {
		return 0, nil
	}
	ids, err := m.store.List()
	if err != nil {
		return 0, err
	}
	resumed := 0
	for _, id := range ids {
		specDoc, err := m.store.LoadSpec(id)
		if err != nil {
			m.logger.Error("recover: unreadable spec journal; skipping", "job", id, "error", err.Error())
			continue
		}
		var spec JobSpec
		dec := json.NewDecoder(bytes.NewReader(specDoc))
		dec.DisallowUnknownFields()
		var cohort fleet.Cohort
		if derr := dec.Decode(&spec); derr != nil {
			err = derr
		} else {
			cohort, err = spec.cohort()
		}
		if err != nil {
			m.logger.Error("recover: invalid spec journal; dropping job", "job", id, "error", err.Error())
			m.store.Remove(id)
			continue
		}
		hash := SpecHash(specDoc)
		ck, err := m.store.LoadCheckpoint(id)
		if err == nil && ck != nil {
			err = validateCheckpoint(ck, hash, spec, cohort)
		}
		if err != nil {
			// Satellite invariant: refuse the resume, say why, start from
			// scratch — never merge a suspect prefix.
			m.logger.Warn("recover: checkpoint rejected; restarting job from scratch",
				"job", id, "error", err.Error())
			ck = nil
		}
		if ck == nil {
			ck = fleet.NewCheckpoint(hash, buildinfo.Get().Version, spec.shards())
		}
		if !m.admitRecovered(id, spec, cohort.Devices, hash, ck) {
			break // shutting down
		}
		resumed++
	}
	return resumed, nil
}

// validateCheckpoint pins a loaded checkpoint to the job about to resume
// from it.
func validateCheckpoint(ck *fleet.Checkpoint, specHash string, spec JobSpec, cohort fleet.Cohort) error {
	if ck.SpecHash != specHash {
		return fmt.Errorf("svc: checkpoint spec hash %.12s does not match journaled spec %.12s", ck.SpecHash, specHash)
	}
	if v := buildinfo.Get().Version; ck.CodeVersion != v {
		return fmt.Errorf("svc: checkpoint written by code version %q, running %q", ck.CodeVersion, v)
	}
	if ck.ShardCount != spec.shards() {
		return fmt.Errorf("svc: checkpoint has %d shards, spec wants %d", ck.ShardCount, spec.shards())
	}
	if ck.DoneCount() > 0 && ck.CohortDevices != cohort.Devices {
		return fmt.Errorf("svc: checkpoint cohort is %d devices, spec wants %d", ck.CohortDevices, cohort.Devices)
	}
	return nil
}

// admitRecovered registers a recovered job under its original ID and
// starts it. Returns false when shutdown has already begun.
func (m *Manager) admitRecovered(id string, spec JobSpec, devices int, hash string, ck *fleet.Checkpoint) bool {
	job := newJob(id, spec, devices, time.Now())
	job.specHash = hash
	job.ckpt = ck
	if n := ck.DoneCount(); n > 0 {
		done := make(map[int]int, n)
		for _, i := range ck.DoneShards() {
			lo, hi := fleet.ShardRange(devices, i, job.shards)
			done[i] = hi - lo
		}
		job.markResumed(done, len(ck.Failed))
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false
	}
	// Keep the ID sequence ahead of every recovered ID so new submissions
	// cannot collide with a journaled job.
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > m.seq {
		m.seq = n
	}
	jctx, cancel := context.WithCancel(m.ctx)
	job.cancel = cancel
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	m.metrics.inc(m.metrics.submitted)
	m.logger.Info("job recovered",
		"job", id, "label", spec.Label, "devices", devices,
		"shards", job.shards, "resumed_shards", ck.DoneCount())
	go m.runJob(jctx, job)
	return true
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots every job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel requests cancellation of a running or queued job.
func (m *Manager) Cancel(id string) error {
	job, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	if !job.requestCancel() {
		return fmt.Errorf("svc: job %s already %s", id, job.Progress().State)
	}
	return nil
}

// runJob drives one campaign: wait for a slot, fan the shard runs out,
// merge in shard order, finalize. Along the way it assembles the job's
// telemetry: per-shard dispatch spans and worker span batches (offset
// onto the job timeline), stage wall/CPU timings, and a job-scoped
// logger carried to the runner through the context.
func (m *Manager) runJob(ctx context.Context, job *Job) {
	defer m.wg.Done()
	defer job.cancel()
	jlog := m.logger.With("job", job.id)
	ctx = WithLogger(ctx, jlog)
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-ctx.Done():
		job.finish(nil, ctx.Err(), time.Now())
		m.cleanupState(job, jlog)
		m.finalize(job, 0)
		return
	}
	job.setRunning(time.Now())
	m.metrics.setGauge(m.metrics.running, float64(len(m.sem)))
	jlog.Info("job running", "shards", job.shards, "devices", job.devices)

	// Every dispatch goes through the retry layer: transient worker
	// failures re-run in place (byte-identical — RunShard is pure in
	// (spec, index)), and only a permanent error or an exhausted attempt
	// budget dooms the campaign.
	runner := RetryRunner{
		Inner:  m.runner,
		Policy: m.retry,
		OnRetry: func(index, attempt int, class ErrorClass, err error) {
			job.noteRetry()
			m.metrics.noteRetry(class)
		},
	}
	n := job.shards
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if job.ckpt.Done(i) {
			continue // restored from the checkpoint; already merged
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			progress := func(done int) {
				if delta := job.shardProgress(i, done); delta > 0 {
					m.metrics.add(m.metrics.devicesDone, uint64(delta))
				}
			}
			dispatchStart := job.sinceStart()
			res, err := runner.RunShard(ctx, job.spec, i, progress)
			if err == nil {
				// Merge in completion order, before the shard counts as
				// finished — a checkpoint never claims a shard it hasn't
				// folded in.
				err = m.foldShard(job, res.Shard)
			}
			if err != nil {
				errs[i] = err
				if ctx.Err() == nil {
					jlog.Error("shard failed", "shard", i, "error", err.Error())
				}
				// One dead shard dooms the campaign; stop the others
				// promptly instead of burning cores on a lost run.
				job.cancel()
				return
			}
			shard := res.Shard
			job.recordShard(i, res, dispatchStart, job.sinceStart())
			progress(shardDevices(shard))
			job.shardFinished(len(shard.Failed))
			m.metrics.add(m.metrics.devicesFailed, uint64(len(shard.Failed)))
		}(i)
	}
	wg.Wait()
	job.recordStage(StageRun, job.sinceStart().Seconds())

	// Classify the fan-out's outcome. Siblings of a failed shard return
	// context.Canceled from the prompt-stop cancel above; joining those
	// with the real failure would make finish() misread a failed job as
	// cancelled, so cancellations only win when nothing actually failed.
	var failures, cancels []error
	for _, e := range errs {
		switch {
		case e == nil:
		case errors.Is(e, context.Canceled):
			cancels = append(cancels, e)
		default:
			failures = append(failures, e)
		}
	}
	err := errors.Join(failures...)
	if err == nil && len(cancels) > 0 {
		err = cancels[0]
	}
	var result *fleet.Result
	if err == nil {
		mergeStart := job.sinceStart()
		result, err = job.ckpt.Result()
		mergeEnd := job.sinceStart()
		job.recordMerge(mergeStart, mergeEnd)
	}
	job.finish(result, err, time.Now())
	m.cleanupState(job, jlog)
	m.finalize(job, time.Since(job.started).Seconds())
	p := job.Progress()
	jlog.Info("job finished",
		"state", string(p.State),
		"devices_done", p.Done, "devices_failed", p.FailedDevices,
		obs.DurationSeconds("elapsed_s", time.Since(job.started)),
		slog.Float64("cpu_s", p.CPUS))
}

// shardDevices is the shard's total accounted devices — the final
// progress count even when the worker's last throttled report lagged.
func shardDevices(s *fleet.Shard) int {
	return s.Acc.Devices() + len(s.Failed)
}

// foldShard merges one completed shard into the job's checkpoint and,
// when persistence is on and the cadence says so, writes the checkpoint
// document out. A write failure is logged but does not fail the shard:
// the in-memory campaign is still correct, only resumability degrades.
func (m *Manager) foldShard(job *Job, shard *fleet.Shard) error {
	job.ckptMu.Lock()
	defer job.ckptMu.Unlock()
	if err := job.ckpt.AddShard(shard); err != nil {
		return err
	}
	if m.store == nil {
		return nil
	}
	job.sinceCkpt++
	if job.sinceCkpt < m.ckptEvery {
		return nil
	}
	if err := m.store.WriteCheckpoint(job.id, job.ckpt); err != nil {
		m.logger.Warn("checkpoint write failed", "job", job.id, "error", err.Error())
		return nil
	}
	job.sinceCkpt = 0
	return nil
}

// cleanupState removes a terminal job's persisted spec and checkpoint —
// except when shutdown (not the user) cancelled it: a drained job's
// journal survives so the next daemon boot resumes it where the
// checkpoint left off.
func (m *Manager) cleanupState(job *Job, jlog *slog.Logger) {
	if m.store == nil {
		return
	}
	if job.Progress().State == StateCancelled && !job.userCancelled() {
		jlog.Info("job state kept for resume", "dir", m.store.Dir())
		return
	}
	if err := m.store.Remove(job.id); err != nil {
		jlog.Warn("removing job state failed", "error", err.Error())
	}
}

// finalize updates terminal-state metrics.
func (m *Manager) finalize(job *Job, durationS float64) {
	switch job.Progress().State {
	case StateDone:
		m.metrics.inc(m.metrics.completed)
	case StateCancelled:
		m.metrics.inc(m.metrics.cancelled)
	default:
		m.metrics.inc(m.metrics.failed)
	}
	if durationS > 0 {
		m.metrics.observe(m.metrics.duration, durationS)
	}
	m.metrics.setGauge(m.metrics.running, float64(len(m.sem)))
}

// BeginShutdown stops admission and cancels every live job's context.
// Idempotent; returns immediately.
func (m *Manager) BeginShutdown() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.closing)
	}
	m.mu.Unlock()
	m.stopAll()
}

// Wait blocks until every job goroutine has finished or ctx expires. On
// expiry it returns an error naming the stuck jobs — the daemon exits
// anyway, so a hung campaign cannot block shutdown past the timeout.
func (m *Manager) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		var stuck []string
		for _, j := range m.Jobs() {
			if p := j.Progress(); !p.State.Terminal() {
				stuck = append(stuck, j.ID())
			}
		}
		return fmt.Errorf("svc: shutdown timed out with %d jobs still running %v", len(stuck), stuck)
	}
}

// Shutdown is BeginShutdown followed by Wait.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.BeginShutdown()
	return m.Wait(ctx)
}
