package svc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"ccdem/internal/buildinfo"
	"ccdem/internal/fleet"
	"ccdem/internal/obs"
)

// ErrShuttingDown rejects submissions once shutdown has begun.
var ErrShuttingDown = errors.New("svc: shutting down")

// ErrUnknownJob reports a job ID the manager has never issued.
var ErrUnknownJob = errors.New("svc: unknown job")

// Config configures a Manager.
type Config struct {
	// Runner executes shard runs. Required (LocalRunner{} for in-process).
	Runner Runner
	// MaxJobs bounds how many campaigns run concurrently; further
	// submissions queue. 0 means 1.
	MaxJobs int
	// Logger receives the service's structured log stream (job lifecycle,
	// relayed worker records). Nil disables logging.
	Logger *slog.Logger
	// WatchHeartbeat is the interval between SSE comment frames on watch
	// streams — proxy keep-alives independent of progress traffic. 0 means
	// 15 seconds.
	WatchHeartbeat time.Duration
}

// defaultWatchHeartbeat keeps idle SSE connections alive through
// proxies with conservative idle timeouts.
const defaultWatchHeartbeat = 15 * time.Second

// Manager owns the service's job table: it admits campaign specs,
// schedules them through a bounded semaphore, fans shard runs out to the
// Runner, merges shard accumulators in shard order, and tracks live
// progress plus obs metrics for every job.
type Manager struct {
	runner    Runner
	sem       chan struct{}
	metrics   *metrics
	logger    *slog.Logger
	heartbeat time.Duration

	ctx     context.Context // parent of every job context
	stopAll context.CancelFunc
	closing chan struct{}
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	seq    int
	jobs   map[string]*Job
	order  []string
}

// metrics is the manager's obs registry surface: campaign and device
// counters, the running-jobs gauge, and a job-duration histogram. obs
// instruments are single-goroutine by design (per-device registries,
// merged after the run); here many job and shard goroutines update one
// registry, so every touch — including the /api/metrics dump — goes
// through mu.
type metrics struct {
	mu  sync.Mutex
	reg *obs.Registry

	submitted *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter

	devicesDone   *obs.Counter
	devicesFailed *obs.Counter

	running  *obs.Gauge
	duration *obs.Histogram
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg:           reg,
		submitted:     reg.Counter("svc.jobs.submitted"),
		rejected:      reg.Counter("svc.jobs.rejected"),
		completed:     reg.Counter("svc.jobs.completed"),
		failed:        reg.Counter("svc.jobs.failed"),
		cancelled:     reg.Counter("svc.jobs.cancelled"),
		devicesDone:   reg.Counter("svc.devices.done"),
		devicesFailed: reg.Counter("svc.devices.failed"),
		running:       reg.Gauge("svc.jobs.running"),
		duration:      reg.Histogram("svc.job.duration_s", []float64{1, 5, 15, 60, 300, 1800, 7200}),
	}
}

func (mx *metrics) inc(c *obs.Counter) {
	mx.mu.Lock()
	c.Inc()
	mx.mu.Unlock()
}

func (mx *metrics) add(c *obs.Counter, n uint64) {
	mx.mu.Lock()
	c.Add(n)
	mx.mu.Unlock()
}

func (mx *metrics) count(c *obs.Counter) uint64 {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	return c.Value()
}

func (mx *metrics) setGauge(g *obs.Gauge, v float64) {
	mx.mu.Lock()
	g.Set(v)
	mx.mu.Unlock()
}

func (mx *metrics) observe(h *obs.Histogram, v float64) {
	mx.mu.Lock()
	h.Observe(v)
	mx.mu.Unlock()
}

func (mx *metrics) write(w io.Writer) error {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	return mx.reg.WriteText(w)
}

// NewManager builds a manager ready to accept jobs.
func NewManager(cfg Config) *Manager {
	maxJobs := cfg.MaxJobs
	if maxJobs < 1 {
		maxJobs = 1
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	heartbeat := cfg.WatchHeartbeat
	if heartbeat <= 0 {
		heartbeat = defaultWatchHeartbeat
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		runner:    cfg.Runner,
		sem:       make(chan struct{}, maxJobs),
		metrics:   newMetrics(),
		logger:    logger,
		heartbeat: heartbeat,
		ctx:       ctx,
		stopAll:   cancel,
		closing:   make(chan struct{}),
		jobs:      make(map[string]*Job),
	}
}

// WriteMetrics dumps the manager's registry (GET /api/metrics).
func (m *Manager) WriteMetrics(w io.Writer) error { return m.metrics.write(w) }

// WritePrometheus writes the manager's registry in Prometheus text
// exposition format (GET /metrics), followed by the service-level
// families the registry doesn't hold: build identity and per-job series
// labeled by job ID.
func (m *Manager) WritePrometheus(w io.Writer) error {
	m.metrics.mu.Lock()
	err := m.metrics.reg.WritePrometheus(w)
	m.metrics.mu.Unlock()
	if err != nil {
		return err
	}
	pw := obs.NewPromWriter(w)
	bi := buildinfo.Get()
	pw.Family("ccdem_build_info", "gauge", "build identity of the running daemon")
	pw.Sample("ccdem_build_info", [][2]string{
		{"version", bi.Version}, {"go", bi.GoVersion}, {"revision", bi.Revision},
	}, 1)
	jobs := m.Jobs()
	if len(jobs) > 0 {
		snaps := make([]Progress, len(jobs))
		for i, j := range jobs {
			snaps[i] = j.Progress()
		}
		pw.Family("svc_job_state", "gauge", "job lifecycle state (1 = the labeled state is current)")
		for _, p := range snaps {
			pw.Sample("svc_job_state", [][2]string{{"job", p.ID}, {"state", string(p.State)}}, 1)
		}
		pw.Family("svc_job_devices_done", "gauge", "devices completed per job")
		for _, p := range snaps {
			pw.Sample("svc_job_devices_done", [][2]string{{"job", p.ID}}, float64(p.Done))
		}
		pw.Family("svc_job_devices_failed", "gauge", "devices failed per job")
		for _, p := range snaps {
			pw.Sample("svc_job_devices_failed", [][2]string{{"job", p.ID}}, float64(p.FailedDevices))
		}
	}
	return pw.Err()
}

// Closing is closed when shutdown begins — the lever long-lived watch
// handlers select on so they cannot wedge the HTTP server's drain.
func (m *Manager) Closing() <-chan struct{} { return m.closing }

// Submit validates and admits a campaign. The job runs asynchronously;
// the returned Job is live immediately (queued until a slot frees up).
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	cohort, err := spec.cohort()
	if err != nil {
		m.metrics.inc(m.metrics.rejected)
		m.logger.Warn("job rejected", "error", err.Error())
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.metrics.inc(m.metrics.rejected)
		m.logger.Warn("job rejected", "error", ErrShuttingDown.Error())
		return nil, ErrShuttingDown
	}
	m.seq++
	id := fmt.Sprintf("job-%04d", m.seq)
	job := newJob(id, spec, cohort.Devices, time.Now())
	jctx, cancel := context.WithCancel(m.ctx)
	job.cancel = cancel
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	m.metrics.inc(m.metrics.submitted)
	m.logger.Info("job submitted",
		"job", id, "label", spec.Label, "devices", cohort.Devices, "shards", spec.shards())
	go m.runJob(jctx, job)
	return job, nil
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots every job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel requests cancellation of a running or queued job.
func (m *Manager) Cancel(id string) error {
	job, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	if !job.requestCancel() {
		return fmt.Errorf("svc: job %s already %s", id, job.Progress().State)
	}
	return nil
}

// runJob drives one campaign: wait for a slot, fan the shard runs out,
// merge in shard order, finalize. Along the way it assembles the job's
// telemetry: per-shard dispatch spans and worker span batches (offset
// onto the job timeline), stage wall/CPU timings, and a job-scoped
// logger carried to the runner through the context.
func (m *Manager) runJob(ctx context.Context, job *Job) {
	defer m.wg.Done()
	defer job.cancel()
	jlog := m.logger.With("job", job.id)
	ctx = WithLogger(ctx, jlog)
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-ctx.Done():
		job.finish(nil, ctx.Err(), time.Now())
		m.finalize(job, 0)
		return
	}
	job.setRunning(time.Now())
	m.metrics.setGauge(m.metrics.running, float64(len(m.sem)))
	jlog.Info("job running", "shards", job.shards, "devices", job.devices)

	n := job.shards
	shards := make([]*fleet.Shard, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			progress := func(done int) {
				if delta := job.shardProgress(i, done); delta > 0 {
					m.metrics.add(m.metrics.devicesDone, uint64(delta))
				}
			}
			dispatchStart := job.sinceStart()
			res, err := m.runner.RunShard(ctx, job.spec, i, progress)
			if err != nil {
				errs[i] = err
				if ctx.Err() == nil {
					jlog.Error("shard failed", "shard", i, "error", err.Error())
				}
				// One dead shard dooms the campaign; stop the others
				// promptly instead of burning cores on a lost run.
				job.cancel()
				return
			}
			shard := res.Shard
			shards[i] = shard
			job.recordShard(i, res, dispatchStart, job.sinceStart())
			progress(shardDevices(shard))
			job.shardFinished(len(shard.Failed))
			m.metrics.add(m.metrics.devicesFailed, uint64(len(shard.Failed)))
		}(i)
	}
	wg.Wait()
	job.recordStage(StageRun, job.sinceStart().Seconds())

	var result *fleet.Result
	err := errors.Join(errs...)
	if err == nil {
		mergeStart := job.sinceStart()
		result, err = fleet.MergeShards(shards)
		mergeEnd := job.sinceStart()
		job.recordMerge(mergeStart, mergeEnd)
	}
	job.finish(result, err, time.Now())
	m.finalize(job, time.Since(job.started).Seconds())
	p := job.Progress()
	jlog.Info("job finished",
		"state", string(p.State),
		"devices_done", p.Done, "devices_failed", p.FailedDevices,
		obs.DurationSeconds("elapsed_s", time.Since(job.started)),
		slog.Float64("cpu_s", p.CPUS))
}

// shardDevices is the shard's total accounted devices — the final
// progress count even when the worker's last throttled report lagged.
func shardDevices(s *fleet.Shard) int {
	return s.Acc.Devices() + len(s.Failed)
}

// finalize updates terminal-state metrics.
func (m *Manager) finalize(job *Job, durationS float64) {
	switch job.Progress().State {
	case StateDone:
		m.metrics.inc(m.metrics.completed)
	case StateCancelled:
		m.metrics.inc(m.metrics.cancelled)
	default:
		m.metrics.inc(m.metrics.failed)
	}
	if durationS > 0 {
		m.metrics.observe(m.metrics.duration, durationS)
	}
	m.metrics.setGauge(m.metrics.running, float64(len(m.sem)))
}

// BeginShutdown stops admission and cancels every live job's context.
// Idempotent; returns immediately.
func (m *Manager) BeginShutdown() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.closing)
	}
	m.mu.Unlock()
	m.stopAll()
}

// Wait blocks until every job goroutine has finished or ctx expires. On
// expiry it returns an error naming the stuck jobs — the daemon exits
// anyway, so a hung campaign cannot block shutdown past the timeout.
func (m *Manager) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		var stuck []string
		for _, j := range m.Jobs() {
			if p := j.Progress(); !p.State.Terminal() {
				stuck = append(stuck, j.ID())
			}
		}
		return fmt.Errorf("svc: shutdown timed out with %d jobs still running %v", len(stuck), stuck)
	}
}

// Shutdown is BeginShutdown followed by Wait.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.BeginShutdown()
	return m.Wait(ctx)
}
