package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ccdem/internal/buildinfo"
	"ccdem/internal/fleet"
)

func TestStoreRoundTrip(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	doc := testSpecDoc(t, 8)
	if err := store.JournalSpec("job-0001", doc); err != nil {
		t.Fatalf("JournalSpec: %v", err)
	}
	got, err := store.LoadSpec("job-0001")
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatalf("LoadSpec = (%q, %v), want the journaled bytes back", got, err)
	}
	// No checkpoint yet is not an error — just no completed shards.
	if ck, err := store.LoadCheckpoint("job-0001"); ck != nil || err != nil {
		t.Fatalf("LoadCheckpoint before any write = (%v, %v), want (nil, nil)", ck, err)
	}
	ck := fleet.NewCheckpoint(SpecHash(doc), "v-test", 2)
	if err := store.WriteCheckpoint("job-0001", ck); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	loaded, err := store.LoadCheckpoint("job-0001")
	if err != nil || loaded == nil || loaded.SpecHash != SpecHash(doc) {
		t.Fatalf("LoadCheckpoint = (%+v, %v)", loaded, err)
	}
	ids, err := store.List()
	if err != nil || len(ids) != 1 || ids[0] != "job-0001" {
		t.Fatalf("List = (%v, %v), want [job-0001]", ids, err)
	}
	if err := store.Remove("job-0001"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	assertStateDirEmpty(t, store.Dir())
}

// assertStateDirEmpty: terminal cleanup must leave nothing behind — no
// journals, no checkpoints, and no stray atomic-write temp files.
func assertStateDirEmpty(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	for _, e := range entries {
		t.Errorf("state dir not empty: %s left behind", e.Name())
	}
}

// holdRunner runs allowed shards in-process and parks the rest until its
// context dies — the campaign shape for "daemon lost mid-flight with
// some shards checkpointed".
type holdRunner struct {
	allow map[int]bool

	mu  sync.Mutex
	ran map[int]int
}

func newHoldRunner(allow ...int) *holdRunner {
	h := &holdRunner{allow: make(map[int]bool), ran: make(map[int]int)}
	for _, i := range allow {
		h.allow[i] = true
	}
	return h
}

func (h *holdRunner) runs(index int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ran[index]
}

func (h *holdRunner) RunShard(ctx context.Context, spec JobSpec, index int, progress func(int)) (ShardResult, error) {
	h.mu.Lock()
	h.ran[index]++
	h.mu.Unlock()
	if !h.allow[index] {
		<-ctx.Done()
		return ShardResult{}, ctx.Err()
	}
	return LocalRunner{}.RunShard(ctx, spec, index, progress)
}

// waitForCheckpoint polls until the job's persisted checkpoint claims at
// least wantDone completed shards.
func waitForCheckpoint(t *testing.T, store *Store, id string, wantDone int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ck, err := store.LoadCheckpoint(id)
		if err == nil && ck != nil && ck.DoneCount() >= wantDone {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint with %d done shards appeared for %s (last: %v, %v)", wantDone, id, ck, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManagerResumesFromCheckpoint is the daemon-loss tentpole in
// miniature: manager A checkpoints one shard and goes down with the job
// incomplete (a shutdown-cancelled job keeps its journal — the graceful-
// drain half of the resume contract); manager B over the same state dir
// recovers the job under its original ID, re-runs only the missing
// shards, and produces a result byte-identical to the unfaulted direct
// run. Terminal cleanup then empties the state dir.
func TestManagerResumesFromCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	doc := testSpecDoc(t, 24)

	storeA, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	mA := NewManager(Config{Runner: newHoldRunner(0), Store: storeA})
	job, err := mA.Submit(JobSpec{Spec: doc, Shards: 3, Workers: 2, Label: "resume-me"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitForCheckpoint(t, storeA, job.ID(), 1)
	// The daemon "dies": shutdown cancels the held shards; the journal
	// and checkpoint stay on disk because the user never cancelled.
	if err := mA.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if p := job.Progress(); p.State != StateCancelled {
		t.Fatalf("state after shutdown = %s, want cancelled", p.State)
	}

	storeB, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	runnerB := newHoldRunner(0, 1, 2)
	var logBuf bytes.Buffer
	mB := NewManager(Config{
		Runner: runnerB,
		Store:  storeB,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	defer mB.Shutdown(context.Background())
	resumed, err := mB.Recover()
	if err != nil || resumed != 1 {
		t.Fatalf("Recover = (%d, %v), want (1, nil)", resumed, err)
	}
	jobB, ok := mB.Job(job.ID())
	if !ok {
		t.Fatalf("recovered manager has no job %s", job.ID())
	}
	p := waitTerminal(t, jobB)
	if p.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", p.State, p.Error)
	}
	if p.ResumedShards < 1 {
		t.Errorf("ResumedShards = %d, want >= 1", p.ResumedShards)
	}
	if p.Label != "resume-me" || p.Done != 24 {
		t.Errorf("resumed progress = %+v, want the original label and full device count", p)
	}
	// Shard 0 was checkpointed by manager A, so manager B must not have
	// dispatched it — resuming means skipping already-merged work.
	if ran := runnerB.runs(0); ran != 0 {
		t.Errorf("checkpointed shard 0 re-ran %d times", ran)
	}
	if runnerB.runs(1) != 1 || runnerB.runs(2) != 1 {
		t.Errorf("missing shards ran (%d, %d) times, want exactly once each",
			runnerB.runs(1), runnerB.runs(2))
	}

	result, ok := jobB.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	var got bytes.Buffer
	if err := result.WriteJSON(&got, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if want := directRunJSON(t, doc); !bytes.Equal(got.Bytes(), want) {
		t.Errorf("resumed campaign differs from direct run:\n got: %s\nwant: %s", got.Bytes(), want)
	}
	assertStateDirEmpty(t, dir)
	if !strings.Contains(logBuf.String(), "job recovered") {
		t.Errorf("recovery not logged:\n%s", logBuf.String())
	}
}

// TestRecoverRejectsBadCheckpoints: every way a checkpoint can lie —
// corrupt bytes, wrong spec, wrong code version, wrong shard count —
// must be refused with a structured log record, and the job restarted
// from scratch rather than resumed over a suspect prefix.
func TestRecoverRejectsBadCheckpoints(t *testing.T) {
	doc := testSpecDoc(t, 12)
	specDoc, err := jsonMarshalSpec(JobSpec{Spec: doc, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	hash := SpecHash(specDoc)
	version := buildinfo.Get().Version

	cases := []struct {
		name  string
		write func(t *testing.T, store *Store, id string)
	}{
		{"corrupt document", func(t *testing.T, store *Store, id string) {
			path := filepath.Join(store.Dir(), id+ckptSuffix)
			if err := os.WriteFile(path, []byte(`{"version":1,"crc32":"00000000","payload":{}`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"spec hash mismatch", func(t *testing.T, store *Store, id string) {
			ck := fleet.NewCheckpoint("not-the-journaled-spec", version, 3)
			if err := store.WriteCheckpoint(id, ck); err != nil {
				t.Fatal(err)
			}
		}},
		{"code version skew", func(t *testing.T, store *Store, id string) {
			ck := fleet.NewCheckpoint(hash, version+"-older", 3)
			if err := store.WriteCheckpoint(id, ck); err != nil {
				t.Fatal(err)
			}
		}},
		{"shard count mismatch", func(t *testing.T, store *Store, id string) {
			ck := fleet.NewCheckpoint(hash, version, 5)
			if err := store.WriteCheckpoint(id, ck); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store, err := OpenStore(filepath.Join(t.TempDir(), "state"))
			if err != nil {
				t.Fatalf("OpenStore: %v", err)
			}
			if err := store.JournalSpec("job-0007", specDoc); err != nil {
				t.Fatalf("JournalSpec: %v", err)
			}
			tc.write(t, store, "job-0007")

			var logBuf bytes.Buffer
			m := NewManager(Config{
				Runner: LocalRunner{},
				Store:  store,
				Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
			})
			defer m.Shutdown(context.Background())
			resumed, err := m.Recover()
			if err != nil || resumed != 1 {
				t.Fatalf("Recover = (%d, %v), want the job re-admitted from scratch", resumed, err)
			}
			if !strings.Contains(logBuf.String(), "checkpoint rejected") {
				t.Errorf("rejection not logged:\n%s", logBuf.String())
			}
			job, ok := m.Job("job-0007")
			if !ok {
				t.Fatal("job not re-admitted")
			}
			p := waitTerminal(t, job)
			if p.State != StateDone || p.ResumedShards != 0 {
				t.Fatalf("state = %s, resumed = %d; want a clean from-scratch done run", p.State, p.ResumedShards)
			}
			result, ok := job.Result()
			if !ok {
				t.Fatal("done job has no result")
			}
			var got bytes.Buffer
			if err := result.WriteJSON(&got, false); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			if want := directRunJSON(t, doc); !bytes.Equal(got.Bytes(), want) {
				t.Errorf("from-scratch rerun differs from direct run")
			}
			// The new ID sequence must not collide with the recovered ID.
			job2, err := m.Submit(JobSpec{Spec: doc})
			if err != nil {
				t.Fatalf("Submit after recover: %v", err)
			}
			if job2.ID() == "job-0007" {
				t.Errorf("new submission reused recovered ID %s", job2.ID())
			}
			waitTerminal(t, job2)
		})
	}
}

func TestRecoverDropsInvalidSpecJournal(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if err := store.JournalSpec("job-0001", []byte(`{"spec": null, "nonsense": true}`)); err != nil {
		t.Fatalf("JournalSpec: %v", err)
	}
	var logBuf bytes.Buffer
	m := NewManager(Config{
		Runner: LocalRunner{},
		Store:  store,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	defer m.Shutdown(context.Background())
	resumed, err := m.Recover()
	if err != nil || resumed != 0 {
		t.Fatalf("Recover = (%d, %v), want (0, nil)", resumed, err)
	}
	if !strings.Contains(logBuf.String(), "invalid spec journal") {
		t.Errorf("drop not logged:\n%s", logBuf.String())
	}
	assertStateDirEmpty(t, store.Dir())
}

// TestRecoverCompleteCheckpoint: a job whose checkpoint already covers
// every shard finishes without dispatching anything.
func TestRecoverCompleteCheckpoint(t *testing.T) {
	doc := testSpecDoc(t, 12)
	spec := JobSpec{Spec: doc, Shards: 3}
	store, err := OpenStore(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	specDoc, err := jsonMarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.JournalSpec("job-0002", specDoc); err != nil {
		t.Fatalf("JournalSpec: %v", err)
	}
	ck := fleet.NewCheckpoint(SpecHash(specDoc), buildinfo.Get().Version, 3)
	for i := 0; i < 3; i++ {
		cohort, pool, err := spec.shardCohort(i)
		if err != nil {
			t.Fatalf("shardCohort(%d): %v", i, err)
		}
		shard, err := cohort.RunShard(context.Background(), pool)
		if err != nil {
			t.Fatalf("RunShard(%d): %v", i, err)
		}
		if err := ck.AddShard(shard); err != nil {
			t.Fatalf("AddShard(%d): %v", i, err)
		}
	}
	if err := store.WriteCheckpoint("job-0002", ck); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}

	runner := newHoldRunner() // errors loudly if anything dispatches: nothing is allowed
	m := NewManager(Config{Runner: runner, Store: store})
	defer m.Shutdown(context.Background())
	if resumed, err := m.Recover(); err != nil || resumed != 1 {
		t.Fatalf("Recover = (%d, %v)", resumed, err)
	}
	job, ok := m.Job("job-0002")
	if !ok {
		t.Fatal("job not re-admitted")
	}
	p := waitTerminal(t, job)
	if p.State != StateDone || p.ResumedShards != 3 {
		t.Fatalf("state = %s, resumed = %d, want done with all 3 shards resumed", p.State, p.ResumedShards)
	}
	for i := 0; i < 3; i++ {
		if runner.runs(i) != 0 {
			t.Errorf("shard %d dispatched despite a complete checkpoint", i)
		}
	}
	result, ok := job.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	var got bytes.Buffer
	if err := result.WriteJSON(&got, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if want := directRunJSON(t, doc); !bytes.Equal(got.Bytes(), want) {
		t.Errorf("checkpoint-only result differs from direct run")
	}
	assertStateDirEmpty(t, store.Dir())
}

// TestUserCancelRemovesState: an API cancel is a decision, not a crash —
// the job's persisted state must not resurrect it on the next boot.
func TestUserCancelRemovesState(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	runner := newGateRunner(true)
	m := NewManager(Config{Runner: runner, Store: store})
	defer m.Shutdown(context.Background())
	job, err := m.Submit(JobSpec{Spec: testSpecDoc(t, 6)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-runner.started
	if err := m.Cancel(job.ID()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if p := waitTerminal(t, job); p.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", p.State)
	}
	assertStateDirEmpty(t, store.Dir())
}

// jsonMarshalSpec journals a spec the way Submit does, so hand-built
// journals in tests hash identically.
func jsonMarshalSpec(spec JobSpec) ([]byte, error) {
	return json.Marshal(spec)
}

// TestOpenStoreSweepsStaleTempFiles: a kill -9 between CreateTemp and
// the rename leaves a ".tmp-*" file behind; reopening the store must
// sweep it (it is incomplete by construction) and leave real documents
// alone.
func TestOpenStoreSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.JournalSpec("job-0001", []byte(`{"spec":{}}`)); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "job-0001.ckpt.tmp-123456")
	if err := os.WriteFile(stale, []byte("torn write"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived reopen (%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-0001.spec.json")); err != nil {
		t.Errorf("spec journal swept by mistake: %v", err)
	}
}
