// Shard retry/re-dispatch: the fault-tolerance layer between the job
// manager and any Runner. Because RunShard is a pure function of
// (spec, index) — per-device seeds derive from the global device index,
// and the shard accumulator is integral — a retried shard is
// byte-identical to the attempt that failed, so re-dispatching after a
// worker crash cannot change a single output byte (DESIGN.md §14).
//
// Not every failure deserves a retry: a spec that cannot build a cohort
// will fail the same way on every attempt, so the classifier separates
// permanent errors (fail fast) from transient ones (worker death,
// timeouts, corrupt shard documents — re-dispatch with capped
// exponential backoff). Poison shards that keep failing exhaust their
// attempt budget and surface a structured error listing every attempt.
package svc

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os/exec"
	"strings"
	"time"

	"ccdem/internal/obs"
)

// ErrorClass buckets shard failures for the retry decision and the
// svc_shard_retries_total{class} counter family.
type ErrorClass string

const (
	// ClassPermanent: deterministic failures (spec validation, cohort
	// construction) that would recur on every attempt. Never retried.
	ClassPermanent ErrorClass = "permanent"
	// ClassWorkerExit: the worker subprocess died — non-zero exit,
	// kill -9, OOM. The canonical transient failure.
	ClassWorkerExit ErrorClass = "worker_exit"
	// ClassCorruptShard: the worker's stdout did not decode to the
	// expected shard document (truncation, garbage, wrong position,
	// oversize output). Retried: usually a crash mid-write.
	ClassCorruptShard ErrorClass = "corrupt_shard"
	// ClassTimeout: the per-attempt deadline elapsed.
	ClassTimeout ErrorClass = "timeout"
	// ClassTransient: everything else (exec failures, I/O errors) —
	// retried by default, since only validation is provably permanent.
	ClassTransient ErrorClass = "transient"
)

// PermanentError marks a shard failure as deterministic: retrying would
// reproduce it. Runners wrap spec/cohort validation failures with
// Permanent so the retry layer fails fast instead of burning attempts.
type PermanentError struct {
	Err error
}

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err as a PermanentError (nil stays nil).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// CorruptShardError reports a worker that ran but produced an unusable
// shard document.
type CorruptShardError struct {
	Index int
	Err   error
}

func (e *CorruptShardError) Error() string {
	return fmt.Sprintf("svc: shard %d worker output: %v", e.Index, e.Err)
}
func (e *CorruptShardError) Unwrap() error { return e.Err }

// OversizeOutputError reports a worker whose stdout exceeded the shard
// document size cap (ProcRunner.MaxOutputBytes).
type OversizeOutputError struct {
	Limit int64
}

func (e *OversizeOutputError) Error() string {
	return fmt.Sprintf("worker stdout exceeded %d-byte shard document cap", e.Limit)
}

// ClassifyShardError maps a shard failure to its ErrorClass. Context
// cancellation is not classified here — the retry loop returns it
// directly without consuming an attempt.
func ClassifyShardError(err error) ErrorClass {
	var perm *PermanentError
	if errors.As(err, &perm) {
		return ClassPermanent
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	var corrupt *CorruptShardError
	if errors.As(err, &corrupt) {
		return ClassCorruptShard
	}
	var exit *exec.ExitError
	if errors.As(err, &exit) {
		return ClassWorkerExit
	}
	return ClassTransient
}

// shardAttempt records one failed attempt for the structured poison-
// shard error.
type shardAttempt struct {
	Attempt int
	Class   ErrorClass
	Err     error
}

// ShardFailedError is the structured terminal error for a shard that
// exhausted its attempt budget (or hit a permanent failure): it lists
// every attempt with its classification. Unwrap exposes the underlying
// errors so errors.Is/As still see, e.g., an *exec.ExitError.
type ShardFailedError struct {
	Index    int
	Attempts []shardAttempt
}

func (e *ShardFailedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "svc: shard %d failed after %d attempt(s):", e.Index, len(e.Attempts))
	for _, a := range e.Attempts {
		fmt.Fprintf(&b, " [attempt %d, %s: %v]", a.Attempt, a.Class, a.Err)
	}
	return b.String()
}

func (e *ShardFailedError) Unwrap() []error {
	errs := make([]error, len(e.Attempts))
	for i, a := range e.Attempts {
		errs[i] = a.Err
	}
	return errs
}

// RetryPolicy bounds the re-dispatch loop.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per shard (first try
	// included). <=0 means the default of 3.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each subsequent
	// retry doubles it, capped at MaxBackoff. <=0 means 200ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. <=0 means 5s.
	MaxBackoff time.Duration
	// AttemptTimeout, when >0, bounds each individual attempt with a
	// per-attempt deadline; the elapsed attempt classifies as timeout
	// and is retried (the parent context still bounds the whole shard).
	AttemptTimeout time.Duration
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// Backoff returns the sleep before retry number retry (0-based): base,
// 2·base, 4·base, ... capped at MaxBackoff.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// RetryRunner wraps any Runner with per-shard retry/re-dispatch. A
// progress callback that restarts from zero on a retried shard is
// harmless: Job.shardProgress is monotonic per shard.
type RetryRunner struct {
	Inner  Runner
	Policy RetryPolicy
	// OnRetry, when non-nil, observes each retry decision (metrics,
	// job counters). Called before the backoff sleep.
	OnRetry func(index, attempt int, class ErrorClass, err error)
}

// RunShard implements Runner.
func (r RetryRunner) RunShard(ctx context.Context, spec JobSpec, index int, progress func(done int)) (ShardResult, error) {
	logger := LoggerFrom(ctx)
	start := time.Now()
	var attempts []shardAttempt
	var spans []obs.Span
	for attempt := 1; ; attempt++ {
		attemptStart := time.Since(start)
		res, err := r.runAttempt(ctx, spec, index, progress)
		if err == nil {
			// Failed attempts show up on the job trace as daemon-side
			// "retry" spans alongside the successful dispatch lane.
			res.AttemptSpans = append(spans, res.AttemptSpans...)
			return res, nil
		}
		// Parent cancellation is not a shard failure: stop immediately
		// and report it undecorated so job-state classification works.
		if ctx.Err() != nil {
			return ShardResult{}, ctx.Err()
		}
		class := ClassifyShardError(err)
		attempts = append(attempts, shardAttempt{Attempt: attempt, Class: class, Err: err})
		spans = append(spans, obs.Span{
			Name:   fmt.Sprintf("retry %s", class),
			Worker: index,
			Start:  attemptStart,
			End:    time.Since(start),
		})
		if class == ClassPermanent || attempt >= r.Policy.maxAttempts() {
			return ShardResult{}, &ShardFailedError{Index: index, Attempts: attempts}
		}
		backoff := r.Policy.Backoff(attempt - 1)
		logger.LogAttrs(ctx, slog.LevelWarn, "shard attempt failed; re-dispatching",
			slog.Int("shard", index),
			slog.Int("attempt", attempt),
			slog.Int("max_attempts", r.Policy.maxAttempts()),
			slog.String("class", string(class)),
			slog.String("error", err.Error()),
			obs.DurationSeconds("backoff_s", backoff))
		if r.OnRetry != nil {
			r.OnRetry(index, attempt, class, err)
		}
		select {
		case <-ctx.Done():
			return ShardResult{}, ctx.Err()
		case <-time.After(backoff):
		}
	}
}

func (r RetryRunner) runAttempt(ctx context.Context, spec JobSpec, index int, progress func(done int)) (ShardResult, error) {
	if r.Policy.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Policy.AttemptTimeout)
		defer cancel()
	}
	return r.Inner.RunShard(ctx, spec, index, progress)
}
