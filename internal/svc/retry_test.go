package svc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"ccdem/internal/fleet"
)

func TestRetryPolicyBackoff(t *testing.T) {
	cases := []struct {
		name   string
		policy RetryPolicy
		retry  int
		want   time.Duration
	}{
		{"defaults first", RetryPolicy{}, 0, 200 * time.Millisecond},
		{"defaults doubling", RetryPolicy{}, 2, 800 * time.Millisecond},
		{"defaults capped", RetryPolicy{}, 10, 5 * time.Second},
		{"custom base", RetryPolicy{BaseBackoff: 10 * time.Millisecond}, 0, 10 * time.Millisecond},
		{"custom doubling", RetryPolicy{BaseBackoff: 10 * time.Millisecond}, 3, 80 * time.Millisecond},
		{"custom cap", RetryPolicy{BaseBackoff: time.Second, MaxBackoff: 3 * time.Second}, 5, 3 * time.Second},
		{"cap below base", RetryPolicy{BaseBackoff: time.Second, MaxBackoff: 100 * time.Millisecond}, 0, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.policy.Backoff(tc.retry); got != tc.want {
				t.Errorf("Backoff(%d) = %v, want %v", tc.retry, got, tc.want)
			}
		})
	}
}

// realExitError obtains a genuine *exec.ExitError — the classifier must
// recognize the type the real ProcRunner surfaces, not a stand-in.
func realExitError(t *testing.T) error {
	t.Helper()
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("sh unavailable")
	}
	err := exec.Command("sh", "-c", "exit 3").Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("sh -c 'exit 3' returned %v, want *exec.ExitError", err)
	}
	return err
}

func TestClassifyShardError(t *testing.T) {
	exitErr := realExitError(t)
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"permanent", Permanent(errors.New("bad spec")), ClassPermanent},
		{"wrapped permanent", fmt.Errorf("svc: shard 0: %w", Permanent(errors.New("bad spec"))), ClassPermanent},
		{"deadline", context.DeadlineExceeded, ClassTimeout},
		{"worker exit", exitErr, ClassWorkerExit},
		{"wrapped worker exit", fmt.Errorf("svc: shard 2 worker: %w: diag", exitErr), ClassWorkerExit},
		{"corrupt shard", &CorruptShardError{Index: 1, Err: errors.New("bad document")}, ClassCorruptShard},
		{"oversize output", &CorruptShardError{Index: 1, Err: &OversizeOutputError{Limit: 64}}, ClassCorruptShard},
		{"unknown", errors.New("pipe broke"), ClassTransient},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClassifyShardError(tc.err); got != tc.want {
				t.Errorf("ClassifyShardError(%v) = %s, want %s", tc.err, got, tc.want)
			}
		})
	}
}

// flakyRunner fails each shard's first failures[index] attempts with
// errs[index] (cycled), then delegates to LocalRunner.
type flakyRunner struct {
	mu       sync.Mutex
	failures map[int]int // shard index -> attempts to fail
	err      error
	attempts map[int]int
}

func (f *flakyRunner) RunShard(ctx context.Context, spec JobSpec, index int, progress func(int)) (ShardResult, error) {
	f.mu.Lock()
	f.attempts[index]++
	fail := f.attempts[index] <= f.failures[index]
	f.mu.Unlock()
	if fail {
		return ShardResult{}, f.err
	}
	return LocalRunner{}.RunShard(ctx, spec, index, progress)
}

func TestRetryRunnerRecoversTransientFailures(t *testing.T) {
	inner := &flakyRunner{
		failures: map[int]int{0: 2},
		err:      errors.New("worker lost"),
		attempts: map[int]int{},
	}
	var retried []ErrorClass
	r := RetryRunner{
		Inner:  inner,
		Policy: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
		OnRetry: func(index, attempt int, class ErrorClass, err error) {
			retried = append(retried, class)
		},
	}
	res, err := r.RunShard(context.Background(), JobSpec{Spec: testSpecDoc(t, 4)}, 0, nil)
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	if res.Shard == nil || inner.attempts[0] != 3 {
		t.Fatalf("shard = %v after %d attempts, want success on attempt 3", res.Shard, inner.attempts[0])
	}
	if len(retried) != 2 || retried[0] != ClassTransient {
		t.Errorf("OnRetry saw %v, want two transient retries", retried)
	}
	// The burned attempts must be visible on the job trace.
	if len(res.AttemptSpans) != 2 {
		t.Errorf("AttemptSpans = %v, want 2 retry spans", res.AttemptSpans)
	}
}

func TestRetryRunnerFailsFastOnPermanent(t *testing.T) {
	inner := &flakyRunner{
		failures: map[int]int{0: 99},
		err:      Permanent(errors.New("spec cannot shard")),
		attempts: map[int]int{},
	}
	r := RetryRunner{Inner: inner, Policy: RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond}}
	_, err := r.RunShard(context.Background(), JobSpec{Spec: testSpecDoc(t, 4)}, 0, nil)
	if err == nil || inner.attempts[0] != 1 {
		t.Fatalf("err = %v after %d attempts, want immediate failure", err, inner.attempts[0])
	}
	var failed *ShardFailedError
	if !errors.As(err, &failed) || len(failed.Attempts) != 1 || failed.Attempts[0].Class != ClassPermanent {
		t.Errorf("error = %v, want ShardFailedError with one permanent attempt", err)
	}
}

func TestRetryRunnerExhaustsAttempts(t *testing.T) {
	exitErr := realExitError(t)
	inner := &flakyRunner{
		failures: map[int]int{3: 99},
		err:      fmt.Errorf("svc: shard 3 worker: %w", exitErr),
		attempts: map[int]int{},
	}
	r := RetryRunner{Inner: inner, Policy: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}}
	_, err := r.RunShard(context.Background(), JobSpec{Spec: testSpecDoc(t, 8), Shards: 4}, 3, nil)
	if inner.attempts[3] != 3 {
		t.Fatalf("attempts = %d, want 3", inner.attempts[3])
	}
	var failed *ShardFailedError
	if !errors.As(err, &failed) {
		t.Fatalf("error = %v, want *ShardFailedError", err)
	}
	if failed.Index != 3 || len(failed.Attempts) != 3 {
		t.Fatalf("ShardFailedError = %+v, want shard 3 with 3 attempts", failed)
	}
	// The structured error narrates every attempt and stays inspectable:
	// errors.As must still reach the underlying exec.ExitError.
	for i, a := range failed.Attempts {
		if a.Attempt != i+1 || a.Class != ClassWorkerExit {
			t.Errorf("attempt %d recorded as (%d, %s), want (%d, worker_exit)", i, a.Attempt, a.Class, i+1)
		}
	}
	if got := err.Error(); !strings.Contains(got, "failed after 3 attempt(s)") || !strings.Contains(got, "attempt 2") {
		t.Errorf("error text %q does not narrate the attempts", got)
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Errorf("errors.As cannot reach the exec.ExitError through %v", err)
	}
}

func TestRetryRunnerCancelledMidBackoff(t *testing.T) {
	inner := &flakyRunner{
		failures: map[int]int{0: 99},
		err:      errors.New("worker lost"),
		attempts: map[int]int{},
	}
	// A long backoff the cancellation must cut through promptly.
	r := RetryRunner{Inner: inner, Policy: RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Minute}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.RunShard(ctx, JobSpec{Spec: testSpecDoc(t, 4)}, 0, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v to cut through the backoff", elapsed)
	}
	if inner.attempts[0] != 1 {
		t.Errorf("attempts = %d, want 1 (no retry after cancellation)", inner.attempts[0])
	}
}

// blockingRunner parks until its context dies — the shape of a hung
// worker an AttemptTimeout must reclaim.
type blockingRunner struct {
	mu       sync.Mutex
	attempts int
}

func (b *blockingRunner) RunShard(ctx context.Context, spec JobSpec, index int, progress func(int)) (ShardResult, error) {
	b.mu.Lock()
	b.attempts++
	n := b.attempts
	b.mu.Unlock()
	if n == 1 {
		<-ctx.Done()
		return ShardResult{}, ctx.Err()
	}
	// A canned result, not a real simulation: this test is about the
	// timeout/retry mechanics, and a real shard run under the race
	// detector can outlast any tight AttemptTimeout.
	return ShardResult{Shard: &fleet.Shard{}}, nil
}

func TestRetryRunnerAttemptTimeout(t *testing.T) {
	inner := &blockingRunner{}
	r := RetryRunner{Inner: inner, Policy: RetryPolicy{
		MaxAttempts:    3,
		BaseBackoff:    time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond,
	}}
	var classes []ErrorClass
	r.OnRetry = func(index, attempt int, class ErrorClass, err error) { classes = append(classes, class) }
	res, err := r.RunShard(context.Background(), JobSpec{Spec: testSpecDoc(t, 4)}, 0, nil)
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	if res.Shard == nil || inner.attempts != 2 {
		t.Fatalf("shard = %v after %d attempts, want success on attempt 2", res.Shard, inner.attempts)
	}
	if len(classes) != 1 || classes[0] != ClassTimeout {
		t.Errorf("retry classes = %v, want one timeout", classes)
	}
}

// TestManagerRetriesFlakyShard: the full stack — a shard that fails
// twice then succeeds must leave the job done, the result byte-identical
// to the unfaulted direct run, the retries visible in Progress, the
// per-class counter and log records emitted.
func TestManagerRetriesFlakyShard(t *testing.T) {
	doc := testSpecDoc(t, 30)
	inner := &flakyRunner{
		failures: map[int]int{1: 2},
		err:      errors.New("worker lost"),
		attempts: map[int]int{},
	}
	var logBuf bytes.Buffer
	m := NewManager(Config{
		Runner: inner,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Retry:  RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
	})
	defer m.Shutdown(context.Background())

	job, err := m.Submit(JobSpec{Spec: doc, Shards: 3, Workers: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	p := waitTerminal(t, job)
	if p.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", p.State, p.Error)
	}
	if p.Retries != 2 {
		t.Errorf("Progress.Retries = %d, want 2", p.Retries)
	}
	result, ok := job.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	var got bytes.Buffer
	if err := result.WriteJSON(&got, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if want := directRunJSON(t, doc); !bytes.Equal(got.Bytes(), want) {
		t.Errorf("retried campaign differs from direct run:\n got: %s\nwant: %s", got.Bytes(), want)
	}
	var metrics bytes.Buffer
	if err := m.WritePrometheus(&metrics); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(metrics.String(), `svc_shard_retries_total{class="transient"} 2`) {
		t.Errorf("/metrics missing retry counter:\n%s", metrics.String())
	}
	if !strings.Contains(logBuf.String(), "re-dispatching") {
		t.Errorf("retries not logged:\n%s", logBuf.String())
	}
}

// TestManagerPoisonShardFailsJob: a shard that never succeeds exhausts
// its budget and fails the job — as failed, not cancelled, even though
// the sibling shards get cancelled on the way down.
func TestManagerPoisonShardFailsJob(t *testing.T) {
	inner := &flakyRunner{
		failures: map[int]int{1: 99},
		err:      errors.New("worker lost"),
		attempts: map[int]int{},
	}
	m := NewManager(Config{
		Runner: inner,
		Retry:  RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
	})
	defer m.Shutdown(context.Background())

	job, err := m.Submit(JobSpec{Spec: testSpecDoc(t, 12), Shards: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	p := waitTerminal(t, job)
	if p.State != StateFailed {
		t.Fatalf("state = %s (error %q), want failed", p.State, p.Error)
	}
	if !strings.Contains(p.Error, "failed after 2 attempt(s)") {
		t.Errorf("job error %q does not carry the attempt history", p.Error)
	}
	if inner.attempts[1] != 2 {
		t.Errorf("poison shard attempted %d times, want 2", inner.attempts[1])
	}
	if got := m.metrics.count(m.metrics.failed); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}
}

func TestCrashPlanParse(t *testing.T) {
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"empty", "", true},
		{"kill", "shard=1,after=2,mode=kill", true},
		{"exit", "shard=0,after=5,mode=exit:7", true},
		{"truncate", "shard=2,mode=truncate:100", true},
		{"armed", "shard=1,after=2,mode=kill,file=/tmp/x", true},
		{"missing shard", "after=2,mode=kill", false},
		{"missing mode", "shard=1,after=2", false},
		{"kill without after", "shard=1,mode=kill", false},
		{"bad mode", "shard=1,after=2,mode=explode", false},
		{"bad exit code", "shard=1,after=2,mode=exit:700", false},
		{"bad pair", "shard", false},
		{"unknown key", "shard=1,after=2,mode=kill,color=red", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := parseCrashPlan(tc.in)
			if tc.ok && err != nil {
				t.Fatalf("parseCrashPlan(%q) = %v, want ok", tc.in, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("parseCrashPlan(%q) = %+v, want error", tc.in, plan)
			}
			if tc.in == "" && plan != nil {
				t.Fatalf("empty plan parsed to %+v, want nil", plan)
			}
		})
	}
}
