package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/exec"
	"strings"
	"time"

	"ccdem/internal/fleet"
	"ccdem/internal/obs"
)

// ShardResult is one shard execution's outcome: the shard document
// (which carries the worker's own telemetry spans) plus what the runner
// could observe from outside the run — CPU time consumed by a worker
// subprocess, zero when unknown (in-process runs), and any daemon-side
// spans for failed attempts a RetryRunner burned before succeeding
// (relative to the shard's dispatch).
type ShardResult struct {
	Shard        *fleet.Shard
	CPU          time.Duration
	AttemptSpans []obs.Span
}

// Runner executes one shard of a campaign and returns its accumulator
// shard. progress, when non-nil, receives the shard's cumulative
// completed-device count; calls may come from other goroutines and must
// be cheap. Runners log through LoggerFrom(ctx).
type Runner interface {
	RunShard(ctx context.Context, spec JobSpec, index int, progress func(done int)) (ShardResult, error)
}

// LocalRunner runs shards in-process — the zero-dependency mode for
// tests and single-machine deployments that don't want subprocess
// isolation.
type LocalRunner struct{}

// RunShard implements Runner.
func (LocalRunner) RunShard(ctx context.Context, spec JobSpec, index int, progress func(done int)) (ShardResult, error) {
	cohort, pool, err := spec.shardCohort(index)
	if err != nil {
		return ShardResult{}, Permanent(err)
	}
	if progress != nil {
		pool.OnProgress = func(done, total int) { progress(done) }
	}
	start := time.Now()
	shard, err := cohort.RunShard(ctx, pool)
	if err != nil {
		return ShardResult{}, err
	}
	shard.Spans = append(shard.Spans, obs.Span{Name: "run", Start: 0, End: time.Since(start)})
	return ShardResult{Shard: shard}, nil
}

// progressPrefix is the shard worker's stderr progress protocol: lines
// "ccdem-shard-progress <done> <total>". JSON lines are worker log
// records, relayed into the daemon's log stream; everything else on
// stderr is diagnostic text, kept (bounded) for error reporting.
const progressPrefix = "ccdem-shard-progress "

// maxWorkerDiagBytes bounds the diagnostic text retained per worker — a
// total-byte bound, so a worker spewing long lines cannot balloon the
// daemon's memory no matter how its output splits into lines.
const maxWorkerDiagBytes = 16 * 1024

// maxWorkerOutputBytes is the default cap on a worker's stdout. Shard
// wire documents are small (sparse histograms, a few profiles); 64 MiB
// is orders of magnitude above any legitimate document, so hitting it
// means the worker is misbehaving, not the campaign is large.
const maxWorkerOutputBytes = 64 << 20

// ProcRunner runs each shard in its own worker subprocess: Exe invoked
// with Args plus the "index/count" shard position, the JobSpec document
// on stdin, the shard wire document expected on stdout, and progress,
// log, and diagnostic lines on stderr. Cancelling the context kills the
// worker.
type ProcRunner struct {
	// Exe is the worker binary — normally the daemon's own executable
	// (os.Executable), re-entered in shard-worker mode.
	Exe string
	// Args select the worker mode, e.g. ["-shard-worker"]; the shard
	// position is appended as the final argument.
	Args []string
	// MaxOutputBytes caps the worker's stdout; a worker exceeding it is
	// killed and the shard fails with a CorruptShardError wrapping
	// OversizeOutputError (retryable — a fresh worker may behave). <=0
	// means the 64 MiB default.
	MaxOutputBytes int64
}

// boundedWriter buffers up to limit bytes; the first write past the
// limit triggers kill (stopping the producer) and further bytes are
// discarded without error so exec's stdout copier never stalls.
type boundedWriter struct {
	buf        bytes.Buffer
	limit      int64
	kill       func()
	overflowed bool
}

func (w *boundedWriter) Write(p []byte) (int, error) {
	if !w.overflowed {
		if room := w.limit - int64(w.buf.Len()); int64(len(p)) > room {
			w.overflowed = true
			w.buf.Write(p[:room])
			w.kill()
		} else {
			w.buf.Write(p)
		}
	}
	return len(p), nil
}

// RunShard implements Runner.
func (p ProcRunner) RunShard(ctx context.Context, spec JobSpec, index int, progress func(done int)) (ShardResult, error) {
	// Validate locally first: a malformed spec should fail fast with a
	// real error, not a worker exit status.
	if _, _, err := spec.shardCohort(index); err != nil {
		return ShardResult{}, Permanent(err)
	}
	logger := LoggerFrom(ctx)
	specDoc, err := json.Marshal(spec)
	if err != nil {
		return ShardResult{}, Permanent(err)
	}
	limit := p.MaxOutputBytes
	if limit <= 0 {
		limit = maxWorkerOutputBytes
	}
	args := append(append([]string{}, p.Args...), fmt.Sprintf("%d/%d", index, spec.shards()))
	cmd := exec.CommandContext(ctx, p.Exe, args...)
	cmd.Stdin = bytes.NewReader(specDoc)
	// exec's stdout copier starts after Start has set cmd.Process, so the
	// kill closure below observes it race-free.
	stdout := &boundedWriter{limit: limit, kill: func() {
		if proc := cmd.Process; proc != nil {
			proc.Kill()
		}
	}}
	cmd.Stdout = stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return ShardResult{}, err
	}
	// Don't linger on workers that ignore the kill long enough to wedge
	// shutdown.
	cmd.WaitDelay = 5 * time.Second
	if err := cmd.Start(); err != nil {
		return ShardResult{}, fmt.Errorf("svc: shard %d worker: %w", index, err)
	}
	// Drain stderr on the spot: progress lines feed the callback, JSON
	// log records are folded into the daemon's stream with the shard
	// attr, the rest is kept (bounded) as context for a failure.
	var diag strings.Builder
	diagTruncated := false
	scanner := bufio.NewScanner(stderr)
	scanner.Buffer(make([]byte, 0, 64*1024), 256*1024)
	for scanner.Scan() {
		line := scanner.Text()
		if rest, ok := strings.CutPrefix(line, progressPrefix); ok {
			var done, total int
			if _, err := fmt.Sscanf(rest, "%d %d", &done, &total); err == nil && progress != nil {
				progress(done)
			}
			continue
		}
		if obs.RelayJSONLine(logger, line, slog.Int("shard", index)) {
			continue
		}
		trunc := false
		if n := maxWorkerDiagBytes - diag.Len(); n > 0 {
			if len(line)+1 > n {
				line, trunc = line[:n-1], true
			}
			diag.WriteString(line)
			diag.WriteByte('\n')
		} else {
			trunc = true
		}
		if trunc && !diagTruncated {
			diagTruncated = true
			logger.LogAttrs(ctx, slog.LevelWarn, "shard worker diagnostics truncated",
				slog.Int("shard", index), slog.Int("limit_bytes", maxWorkerDiagBytes))
		}
	}
	if err := cmd.Wait(); err != nil {
		if ctx.Err() != nil {
			return ShardResult{}, ctx.Err()
		}
		if stdout.overflowed {
			return ShardResult{}, &CorruptShardError{Index: index, Err: &OversizeOutputError{Limit: limit}}
		}
		msg := strings.TrimSpace(diag.String())
		if msg != "" {
			return ShardResult{}, fmt.Errorf("svc: shard %d worker: %w: %s", index, err, msg)
		}
		return ShardResult{}, fmt.Errorf("svc: shard %d worker: %w", index, err)
	}
	if stdout.overflowed {
		return ShardResult{}, &CorruptShardError{Index: index, Err: &OversizeOutputError{Limit: limit}}
	}
	var cpu time.Duration
	if st := cmd.ProcessState; st != nil {
		cpu = st.UserTime() + st.SystemTime()
	}
	shard, err := fleet.DecodeShard(&stdout.buf)
	if err != nil {
		return ShardResult{}, &CorruptShardError{Index: index, Err: err}
	}
	if shard.Index != index || shard.Count != spec.shards() {
		return ShardResult{}, &CorruptShardError{Index: index, Err: fmt.Errorf("worker returned shard %d/%d, want %d/%d",
			shard.Index, shard.Count, index, spec.shards())}
	}
	return ShardResult{Shard: shard, CPU: cpu}, nil
}

// RunWorker is the shard-worker subprocess entry point (ccdem-svc
// -shard-worker i/n): read the JobSpec document from stdin, run the
// shard, stream progress lines on stderr, and write the shard wire
// document on stdout. The exit contract is the inverse of
// ProcRunner.RunShard. Log records go to stderr as JSON (always — the
// parent daemon relays them regardless of its own -log-format), and the
// shard document carries "run" and "encode" telemetry spans.
func RunWorker(ctx context.Context, shardArg string, stdin io.Reader, stdout, stderr io.Writer) error {
	logger := slog.New(slog.NewJSONHandler(stderr, nil))
	index, count, err := fleet.ParseShard(shardArg)
	if err != nil {
		return err
	}
	var spec JobSpec
	dec := json.NewDecoder(stdin)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("svc: worker: parsing job spec: %w", err)
	}
	if got := spec.shards(); got != count {
		return fmt.Errorf("svc: worker: shard position %s against a %d-shard spec", shardArg, got)
	}
	cohort, pool, err := spec.shardCohort(index)
	if err != nil {
		return err
	}
	// Deterministic crash injection (chaos tests): a malformed plan fails
	// the worker fast — a chaos harness with a typo must not silently run
	// a clean campaign.
	plan, err := parseCrashPlan(os.Getenv(CrashEnv))
	if err != nil {
		return err
	}
	if plan != nil && (plan.shard != index || !plan.armed()) {
		plan = nil
	}
	logger.LogAttrs(ctx, slog.LevelInfo, "shard worker starting",
		slog.Int("shard", index), slog.Int("of", count), slog.Int("cohort_devices", cohort.Devices))
	// Throttled progress: one line per ~200ms of wall clock plus the
	// final count, so a million-device shard doesn't drown stderr.
	var last time.Time
	pool.OnProgress = func(done, total int) {
		// The pool serializes OnProgress calls, so the crash fires at an
		// exact, reproducible completed-device count.
		if plan != nil && plan.mode != crashTruncate && done >= plan.after {
			plan.fire()
		}
		now := time.Now()
		if done != total && now.Sub(last) < 200*time.Millisecond {
			return
		}
		last = now
		fmt.Fprintf(stderr, "%s%d %d\n", progressPrefix, done, total)
	}
	t0 := time.Now()
	shard, err := cohort.RunShard(ctx, pool)
	if err != nil {
		logger.LogAttrs(ctx, slog.LevelError, "shard failed",
			slog.Int("shard", index), slog.String("error", err.Error()))
		return err
	}
	runEnd := time.Since(t0)
	shard.Spans = append(shard.Spans, obs.Span{Name: "run", Start: 0, End: runEnd})
	// Time the encode itself with a dry run to io.Discard, then emit the
	// real document with the "encode" span included.
	encStart := time.Since(t0)
	if err := shard.Encode(io.Discard); err != nil {
		return err
	}
	encEnd := time.Since(t0)
	shard.Spans = append(shard.Spans, obs.Span{Name: "encode", Start: encStart, End: encEnd})
	logger.LogAttrs(ctx, slog.LevelInfo, "shard complete",
		slog.Int("shard", index),
		slog.Int("devices", shard.Acc.Devices()+len(shard.Failed)),
		slog.Int("failed_devices", len(shard.Failed)),
		obs.DurationSeconds("run_s", runEnd))
	if plan != nil && plan.mode == crashTruncate {
		// Simulate a worker dying mid-write: emit only a prefix of the
		// shard document and report success, so the parent exercises its
		// corrupt-document path rather than its exit-status path.
		var doc bytes.Buffer
		if err := shard.Encode(&doc); err != nil {
			return err
		}
		n := plan.truncate
		if n > doc.Len() {
			n = doc.Len()
		}
		_, err := stdout.Write(doc.Bytes()[:n])
		return err
	}
	return shard.Encode(stdout)
}
