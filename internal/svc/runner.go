package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"time"

	"ccdem/internal/fleet"
)

// Runner executes one shard of a campaign and returns its accumulator
// shard. progress, when non-nil, receives the shard's cumulative
// completed-device count; calls may come from other goroutines and must
// be cheap.
type Runner interface {
	RunShard(ctx context.Context, spec JobSpec, index int, progress func(done int)) (*fleet.Shard, error)
}

// LocalRunner runs shards in-process — the zero-dependency mode for
// tests and single-machine deployments that don't want subprocess
// isolation.
type LocalRunner struct{}

// RunShard implements Runner.
func (LocalRunner) RunShard(ctx context.Context, spec JobSpec, index int, progress func(done int)) (*fleet.Shard, error) {
	cohort, pool, err := spec.shardCohort(index)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		pool.OnProgress = func(done, total int) { progress(done) }
	}
	return cohort.RunShard(ctx, pool)
}

// progressPrefix is the shard worker's stderr progress protocol: lines
// "ccdem-shard-progress <done> <total>". Everything else on stderr is
// diagnostic text, kept for error reporting.
const progressPrefix = "ccdem-shard-progress "

// ProcRunner runs each shard in its own worker subprocess: Exe invoked
// with Args plus the "index/count" shard position, the JobSpec document
// on stdin, the shard wire document expected on stdout, and progress
// lines on stderr. Cancelling the context kills the worker.
type ProcRunner struct {
	// Exe is the worker binary — normally the daemon's own executable
	// (os.Executable), re-entered in shard-worker mode.
	Exe string
	// Args select the worker mode, e.g. ["-shard-worker"]; the shard
	// position is appended as the final argument.
	Args []string
}

// RunShard implements Runner.
func (p ProcRunner) RunShard(ctx context.Context, spec JobSpec, index int, progress func(done int)) (*fleet.Shard, error) {
	// Validate locally first: a malformed spec should fail fast with a
	// real error, not a worker exit status.
	if _, _, err := spec.shardCohort(index); err != nil {
		return nil, err
	}
	specDoc, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	args := append(append([]string{}, p.Args...), fmt.Sprintf("%d/%d", index, spec.shards()))
	cmd := exec.CommandContext(ctx, p.Exe, args...)
	cmd.Stdin = bytes.NewReader(specDoc)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	// Don't linger on workers that ignore the kill long enough to wedge
	// shutdown.
	cmd.WaitDelay = 5 * time.Second
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("svc: shard %d worker: %w", index, err)
	}
	// Drain stderr on the spot: progress lines feed the callback, the
	// rest is kept (bounded) as context for a failure.
	var diag strings.Builder
	scanner := bufio.NewScanner(stderr)
	scanner.Buffer(make([]byte, 0, 64*1024), 256*1024)
	for scanner.Scan() {
		line := scanner.Text()
		if rest, ok := strings.CutPrefix(line, progressPrefix); ok {
			var done, total int
			if _, err := fmt.Sscanf(rest, "%d %d", &done, &total); err == nil && progress != nil {
				progress(done)
			}
			continue
		}
		if diag.Len() < 16*1024 {
			diag.WriteString(line)
			diag.WriteByte('\n')
		}
	}
	if err := cmd.Wait(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		msg := strings.TrimSpace(diag.String())
		if msg != "" {
			return nil, fmt.Errorf("svc: shard %d worker: %w: %s", index, err, msg)
		}
		return nil, fmt.Errorf("svc: shard %d worker: %w", index, err)
	}
	shard, err := fleet.DecodeShard(&stdout)
	if err != nil {
		return nil, fmt.Errorf("svc: shard %d worker output: %w", index, err)
	}
	if shard.Index != index || shard.Count != spec.shards() {
		return nil, fmt.Errorf("svc: shard worker returned shard %d/%d, want %d/%d",
			shard.Index, shard.Count, index, spec.shards())
	}
	return shard, nil
}

// RunWorker is the shard-worker subprocess entry point (ccdem-svc
// -shard-worker i/n): read the JobSpec document from stdin, run the
// shard, stream progress lines on stderr, and write the shard wire
// document on stdout. The exit contract is the inverse of
// ProcRunner.RunShard.
func RunWorker(ctx context.Context, shardArg string, stdin io.Reader, stdout, stderr io.Writer) error {
	index, count, err := fleet.ParseShard(shardArg)
	if err != nil {
		return err
	}
	var spec JobSpec
	dec := json.NewDecoder(stdin)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("svc: worker: parsing job spec: %w", err)
	}
	if got := spec.shards(); got != count {
		return fmt.Errorf("svc: worker: shard position %s against a %d-shard spec", shardArg, got)
	}
	cohort, pool, err := spec.shardCohort(index)
	if err != nil {
		return err
	}
	// Throttled progress: one line per ~200ms of wall clock plus the
	// final count, so a million-device shard doesn't drown stderr.
	var last time.Time
	pool.OnProgress = func(done, total int) {
		now := time.Now()
		if done != total && now.Sub(last) < 200*time.Millisecond {
			return
		}
		last = now
		fmt.Fprintf(stderr, "%s%d %d\n", progressPrefix, done, total)
	}
	shard, err := cohort.RunShard(ctx, pool)
	if err != nil {
		return err
	}
	return shard.Encode(stdout)
}
