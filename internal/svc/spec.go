// Package svc is the campaign service layer behind cmd/ccdem-svc: a
// bounded asynchronous job manager that accepts cohort campaign specs,
// splits each campaign into shard worker runs (in-process or one
// subprocess per shard), streams live per-job progress to any number of
// watchers, and merges the shards' wire-encoded accumulators centrally —
// in shard order — into a result byte-identical to a single-process
// streamed run of the same spec.
package svc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"ccdem/internal/fault"
	"ccdem/internal/fleet"
)

// JobSpec is a submitted campaign: the cohort specification document
// (the same format cmd/ccdem-fleet -spec reads) plus how to run it.
type JobSpec struct {
	// Spec is the embedded fleet cohort specification (devices, seed,
	// session, governor, profiles...). Required.
	Spec json.RawMessage `json:"spec"`
	// Shards is the number of worker runs the campaign splits into
	// (0 or 1 = unsharded). Each shard covers one contiguous slice of the
	// device index space; the merge in shard order reproduces the
	// unsharded aggregate bit for bit.
	Shards int `json:"shards,omitempty"`
	// Workers bounds each shard's device-simulation concurrency
	// (0 = all cores).
	Workers int `json:"workers,omitempty"`
	// Batch is the pool's per-claim index range (0 = one at a time).
	Batch int `json:"batch,omitempty"`
	// Faults scales the default fault plan injected into managed segments
	// (0 = off, 1 = reference chaos mix).
	Faults float64 `json:"faults,omitempty"`
	// Hardened enables governor fail-safe hardening on managed segments.
	Hardened bool `json:"hardened,omitempty"`
	// TaskTimeoutS bounds each device simulation's wall-clock seconds; a
	// device exceeding it is reported failed (0 = unlimited).
	TaskTimeoutS float64 `json:"task_timeout_s,omitempty"`
	// Label is a free-form human tag echoed in progress reports.
	Label string `json:"label,omitempty"`
}

// shards is the normalized shard count.
func (s JobSpec) shards() int {
	if s.Shards < 1 {
		return 1
	}
	return s.Shards
}

// Validate checks the run parameters and the embedded cohort document.
// It is the one validation path: the HTTP boundary, the manager, and the
// shard workers all reject exactly what it rejects.
func (s JobSpec) Validate() error {
	_, err := s.cohort()
	return err
}

// cohort materializes and validates the job's cohort (unsharded).
func (s JobSpec) cohort() (fleet.Cohort, error) {
	if doc := bytes.TrimSpace(s.Spec); len(doc) == 0 || bytes.Equal(doc, []byte("null")) {
		return fleet.Cohort{}, fmt.Errorf("svc: missing cohort spec (field \"spec\")")
	}
	cohort, err := fleet.ReadSpec(bytes.NewReader(s.Spec))
	if err != nil {
		return fleet.Cohort{}, err
	}
	if s.Shards < 0 {
		return fleet.Cohort{}, fmt.Errorf("svc: negative shard count %d", s.Shards)
	}
	if n := s.shards(); n > cohort.Devices {
		return fleet.Cohort{}, fmt.Errorf("svc: %d shards over %d devices leaves empty shards", n, cohort.Devices)
	}
	if s.Workers < 0 {
		return fleet.Cohort{}, fmt.Errorf("svc: negative worker count %d", s.Workers)
	}
	if s.Batch < 0 {
		return fleet.Cohort{}, fmt.Errorf("svc: negative batch size %d", s.Batch)
	}
	if s.Faults < 0 {
		return fleet.Cohort{}, fmt.Errorf("svc: negative fault intensity %g", s.Faults)
	}
	if s.TaskTimeoutS < 0 {
		return fleet.Cohort{}, fmt.Errorf("svc: negative task timeout %gs", s.TaskTimeoutS)
	}
	if s.Faults > 0 {
		plan := fault.DefaultPlan().Scale(s.Faults)
		cohort.Faults = &plan
	}
	cohort.Hardened = s.Hardened
	return cohort, nil
}

// shardCohort materializes the cohort and pool for one shard of the job.
func (s JobSpec) shardCohort(index int) (fleet.Cohort, fleet.Pool, error) {
	cohort, err := s.cohort()
	if err != nil {
		return fleet.Cohort{}, fleet.Pool{}, err
	}
	count := s.shards()
	if index < 0 || index >= count {
		return fleet.Cohort{}, fleet.Pool{}, fmt.Errorf("svc: shard index %d out of [0,%d)", index, count)
	}
	cohort.ShardIndex, cohort.ShardCount = index, count
	pool := fleet.Pool{
		Workers:     s.Workers,
		Batch:       s.Batch,
		TaskTimeout: time.Duration(s.TaskTimeoutS * float64(time.Second)),
	}
	return cohort, pool, nil
}
