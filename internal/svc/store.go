// Crash-safe job persistence: the daemon's -state-dir. Two files per
// job — "<id>.spec.json", the submitted JobSpec document journaled
// verbatim at admission, and "<id>.ckpt", the fleet checkpoint document
// rewritten as shards complete. Every write is atomic (temp file in the
// same directory, fsync, rename, directory fsync), so a kill -9 at any
// instant leaves either the previous complete document or the new one,
// never a torn write. The spec journal's exact bytes are the identity
// the checkpoint pins via SHA-256 (DESIGN.md §14).
package svc

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ccdem/internal/fleet"
)

const (
	specSuffix = ".spec.json"
	ckptSuffix = ".ckpt"
)

// Store is a directory-backed journal of submitted job specs and their
// campaign checkpoints. Methods are safe for concurrent use on distinct
// job IDs; the Manager serializes per-job access.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a state directory. Stale
// ".tmp-*" files — atomic writes interrupted by a crash before their
// rename — are swept on open: they are incomplete by construction and
// nothing else ever removes them.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("svc: state dir: %w", err)
	}
	stale, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		return nil, fmt.Errorf("svc: state dir: %w", err)
	}
	for _, p := range stale {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("svc: sweeping stale temp file: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SpecHash is the job identity a checkpoint pins: SHA-256 over the
// journaled spec document's exact bytes.
func SpecHash(doc []byte) string {
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

func (s *Store) specPath(id string) string { return filepath.Join(s.dir, id+specSuffix) }
func (s *Store) ckptPath(id string) string { return filepath.Join(s.dir, id+ckptSuffix) }

// JournalSpec persists a job's spec document at admission.
func (s *Store) JournalSpec(id string, doc []byte) error {
	if err := writeFileAtomic(s.specPath(id), doc); err != nil {
		return fmt.Errorf("svc: journaling job %s spec: %w", id, err)
	}
	return nil
}

// LoadSpec reads a journaled spec document back.
func (s *Store) LoadSpec(id string) ([]byte, error) {
	doc, err := os.ReadFile(s.specPath(id))
	if err != nil {
		return nil, fmt.Errorf("svc: loading job %s spec: %w", id, err)
	}
	return doc, nil
}

// WriteCheckpoint atomically replaces a job's checkpoint document.
func (s *Store) WriteCheckpoint(id string, ck *fleet.Checkpoint) error {
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		return fmt.Errorf("svc: encoding job %s checkpoint: %w", id, err)
	}
	if err := writeFileAtomic(s.ckptPath(id), buf.Bytes()); err != nil {
		return fmt.Errorf("svc: writing job %s checkpoint: %w", id, err)
	}
	return nil
}

// LoadCheckpoint reads and validates a job's checkpoint. A missing file
// returns (nil, nil): no checkpoint simply means no completed shards
// were persisted.
func (s *Store) LoadCheckpoint(id string) (*fleet.Checkpoint, error) {
	f, err := os.Open(s.ckptPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("svc: loading job %s checkpoint: %w", id, err)
	}
	defer f.Close()
	ck, err := fleet.DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("svc: job %s checkpoint: %w", id, err)
	}
	return ck, nil
}

// Remove deletes a job's persisted state (spec journal and checkpoint).
func (s *Store) Remove(id string) error {
	var firstErr error
	for _, p := range []string{s.ckptPath(id), s.specPath(id)} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// List returns the IDs of every journaled job, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("svc: listing state dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if id, ok := strings.CutSuffix(e.Name(), specSuffix); ok && !e.IsDir() {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// writeFileAtomic writes data so that a crash at any point leaves either
// the old file or the new one: temp file in the target's directory,
// write, fsync, close, rename over the target, fsync the directory so
// the rename itself is durable.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
