package svc

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"ccdem/internal/fleet"
	"ccdem/internal/sim"
)

// testSpecDoc serializes a small deterministic cohort as a spec document.
func testSpecDoc(t *testing.T, devices int) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := fleet.WriteSpec(&buf, fleet.Cohort{
		Devices:      devices,
		Seed:         7,
		Session:      2 * sim.Second,
		MeterSamples: 256,
	})
	if err != nil {
		t.Fatalf("WriteSpec: %v", err)
	}
	return buf.Bytes()
}

// directRunJSON runs the spec single-process in streaming mode and
// returns the aggregate JSON — the byte-identity reference.
func directRunJSON(t *testing.T, doc []byte) []byte {
	t.Helper()
	cohort, err := fleet.ReadSpec(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	cohort.Stream = true
	result, err := cohort.Run(context.Background(), fleet.Pool{Workers: 2})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	var buf bytes.Buffer
	if err := result.WriteJSON(&buf, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, job *Job) Progress {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		p := job.Progress()
		if p.State.Terminal() {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", job.ID(), p.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestManagerShardedJobMatchesDirectRun(t *testing.T) {
	doc := testSpecDoc(t, 30)
	m := NewManager(Config{Runner: LocalRunner{}, MaxJobs: 2})
	defer m.Shutdown(context.Background())

	job, err := m.Submit(JobSpec{Spec: doc, Shards: 3, Workers: 2, Label: "match"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	p := waitTerminal(t, job)
	if p.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", p.State, p.Error)
	}
	if p.Done != 30 || p.Devices != 30 || p.ShardsDone != 3 || p.FailedDevices != 0 {
		t.Fatalf("terminal progress = %+v, want 30/30 devices over 3 shards", p)
	}
	if p.Label != "match" {
		t.Fatalf("label = %q, want %q", p.Label, "match")
	}

	result, ok := job.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	var got bytes.Buffer
	if err := result.WriteJSON(&got, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if want := directRunJSON(t, doc); !bytes.Equal(got.Bytes(), want) {
		t.Errorf("sharded service result differs from direct run:\n got: %s\nwant: %s", got.Bytes(), want)
	}
}

func TestManagerRejectsInvalidSpec(t *testing.T) {
	m := NewManager(Config{Runner: LocalRunner{}})
	defer m.Shutdown(context.Background())

	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"missing spec", JobSpec{}, "missing cohort spec"},
		{"negative shards", JobSpec{Spec: testSpecDoc(t, 4), Shards: -1}, "negative shard count"},
		{"too many shards", JobSpec{Spec: testSpecDoc(t, 4), Shards: 9}, "empty shards"},
		{"negative workers", JobSpec{Spec: testSpecDoc(t, 4), Workers: -2}, "negative worker count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Submit(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Submit error = %v, want containing %q", err, tc.want)
			}
		})
	}
	if got := m.metrics.count(m.metrics.rejected); got != uint64(len(cases)) {
		t.Errorf("rejected counter = %d, want %d", got, len(cases))
	}
}

// gateRunner blocks every shard run until released (or its ctx dies,
// when obeyCtx is set). It records peak concurrency.
type gateRunner struct {
	release chan struct{}
	obeyCtx bool

	mu      sync.Mutex
	running int
	peak    int
	started chan struct{} // receives one token per shard run started
}

func newGateRunner(obeyCtx bool) *gateRunner {
	return &gateRunner{
		release: make(chan struct{}),
		obeyCtx: obeyCtx,
		started: make(chan struct{}, 64),
	}
}

func (g *gateRunner) RunShard(ctx context.Context, spec JobSpec, index int, progress func(int)) (ShardResult, error) {
	g.mu.Lock()
	g.running++
	if g.running > g.peak {
		g.peak = g.running
	}
	g.mu.Unlock()
	g.started <- struct{}{}
	defer func() {
		g.mu.Lock()
		g.running--
		g.mu.Unlock()
	}()
	if g.obeyCtx {
		select {
		case <-g.release:
		case <-ctx.Done():
			return ShardResult{}, ctx.Err()
		}
	} else {
		<-g.release
	}
	return LocalRunner{}.RunShard(ctx, spec, index, progress)
}

// TestProcRunnerDiagBounded: a worker spewing diagnostics must not grow
// the daemon's retained buffer past the per-worker byte cap, and the
// truncation must be logged — not silent.
func TestProcRunnerDiagBounded(t *testing.T) {
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("sh unavailable")
	}
	var logBuf bytes.Buffer
	ctx := WithLogger(context.Background(), slog.New(slog.NewJSONHandler(&logBuf, nil)))
	// ~160KB of non-JSON stderr, then a failing exit so RunShard reports
	// the retained diagnostics in its error.
	r := ProcRunner{Exe: "sh", Args: []string{"-c",
		`i=0; while [ $i -lt 4000 ]; do echo "diagnostic line $i padding padding padding" >&2; i=$((i+1)); done; exit 3`}}
	_, err := r.RunShard(ctx, JobSpec{Spec: testSpecDoc(t, 4)}, 0, nil)
	if err == nil {
		t.Fatal("worker exiting 3 reported no error")
	}
	if got := len(err.Error()); got > maxWorkerDiagBytes+256 {
		t.Errorf("error carries %d bytes of diagnostics, cap is %d", got, maxWorkerDiagBytes)
	}
	if !strings.Contains(logBuf.String(), "diagnostics truncated") {
		t.Errorf("truncation not logged: %s", logBuf.String())
	}
}

func TestManagerCancel(t *testing.T) {
	runner := newGateRunner(true)
	m := NewManager(Config{Runner: runner})
	defer m.Shutdown(context.Background())
	defer close(runner.release)

	job, err := m.Submit(JobSpec{Spec: testSpecDoc(t, 6)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-runner.started
	if err := m.Cancel(job.ID()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	p := waitTerminal(t, job)
	if p.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", p.State)
	}
	if _, ok := job.Result(); ok {
		t.Error("cancelled job has a result")
	}
	if err := m.Cancel(job.ID()); err == nil || !strings.Contains(err.Error(), "already cancelled") {
		t.Errorf("second Cancel = %v, want already-cancelled error", err)
	}
	if err := m.Cancel("job-9999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel unknown = %v, want ErrUnknownJob", err)
	}
}

func TestManagerBoundsConcurrentJobs(t *testing.T) {
	runner := newGateRunner(true)
	m := NewManager(Config{Runner: runner, MaxJobs: 1})
	defer m.Shutdown(context.Background())

	var jobs []*Job
	for i := 0; i < 3; i++ {
		job, err := m.Submit(JobSpec{Spec: testSpecDoc(t, 4)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	// Exactly one job may hold the slot (whichever goroutine won the
	// semaphore); the rest sit queued even after a generous wait.
	<-runner.started
	time.Sleep(50 * time.Millisecond)
	running := 0
	for _, job := range jobs {
		if job.Progress().State == StateRunning {
			running++
		}
	}
	if running != 1 {
		t.Fatalf("%d jobs running concurrently, want 1 behind MaxJobs=1", running)
	}
	close(runner.release)
	for _, job := range jobs {
		if p := waitTerminal(t, job); p.State != StateDone {
			t.Fatalf("job %s state = %s (error %q), want done", job.ID(), p.State, p.Error)
		}
	}
	if runner.peak > 1 {
		t.Errorf("peak concurrent shard runs = %d, want 1", runner.peak)
	}
	// Drain the job goroutines (finalize included) before reading the
	// terminal-state counter; Shutdown is idempotent with the deferred one.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := m.metrics.count(m.metrics.completed); got != 3 {
		t.Errorf("completed counter = %d, want 3", got)
	}
}

func TestShutdownTimesOutOnHungJob(t *testing.T) {
	runner := newGateRunner(false) // ignores ctx: a truly hung worker
	m := NewManager(Config{Runner: runner})
	defer close(runner.release)

	job, err := m.Submit(JobSpec{Spec: testSpecDoc(t, 4)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-runner.started

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = m.Shutdown(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Shutdown with a hung job returned nil, want timeout error")
	}
	if !strings.Contains(err.Error(), job.ID()) {
		t.Errorf("Shutdown error %q does not name the stuck job %s", err, job.ID())
	}
	if elapsed > 5*time.Second {
		t.Errorf("Shutdown blocked %v, want prompt return after the 200ms deadline", elapsed)
	}
	if _, err := m.Submit(JobSpec{Spec: testSpecDoc(t, 4)}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Submit after shutdown = %v, want ErrShuttingDown", err)
	}
}

func TestShutdownDrainsCleanly(t *testing.T) {
	m := NewManager(Config{Runner: LocalRunner{}, MaxJobs: 2})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		job, err := m.Submit(JobSpec{Spec: testSpecDoc(t, 8), Shards: 2})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	// Shutdown cancels in-flight work; every job must still reach a
	// terminal state and Wait must return without a deadline.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, job := range jobs {
		if p := job.Progress(); !p.State.Terminal() {
			t.Errorf("job %s left in state %s after Shutdown", job.ID(), p.State)
		}
	}
}

func TestJobWatchStreamsToTerminal(t *testing.T) {
	m := NewManager(Config{Runner: LocalRunner{}})
	defer m.Shutdown(context.Background())

	job, err := m.Submit(JobSpec{Spec: testSpecDoc(t, 10), Shards: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	updates, unsubscribe := job.Watch()
	defer unsubscribe()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case p := <-updates:
			if p.ID != job.ID() {
				t.Fatalf("snapshot for %q, want %q", p.ID, job.ID())
			}
			if p.State.Terminal() {
				if p.State != StateDone || p.Done != 10 {
					t.Fatalf("terminal snapshot = %+v, want done with 10 devices", p)
				}
				return
			}
		case <-deadline:
			t.Fatal("watch never delivered a terminal snapshot")
		}
	}
}
