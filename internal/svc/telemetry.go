// Telemetry plumbing shared by the manager, runners, and HTTP layer:
// the context-carried logger that correlates shard-runner output with
// the job that spawned it.
package svc

import (
	"context"
	"log/slog"

	"ccdem/internal/obs"
)

type loggerKey struct{}

// WithLogger returns a context carrying the logger shard runners emit
// through. The manager derives one per job (daemon logger + job attr) so
// everything a runner logs — including relayed worker-subprocess records
// — lands in the daemon's stream already correlated.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// LoggerFrom returns the context's logger, or a no-op logger so
// instrumented code can log unconditionally.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return obs.NopLogger()
}
