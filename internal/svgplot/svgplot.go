// Package svgplot renders the reproduction's figures as standalone SVG
// documents using only the standard library — line charts for the trace
// figures (2, 7, 8) and grouped bar charts for the per-app figures (3, 9,
// 11). The goal is paper-style artifacts a reader can open in a browser,
// not a general plotting library: fixed layout, two font sizes, a small
// qualitative palette.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Palette holds the default series colors (colorblind-safe qualitative
// set).
var Palette = []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9"}

// chart geometry shared by both chart kinds.
const (
	chartW   = 760
	chartH   = 300
	marginL  = 64
	marginR  = 16
	marginT  = 34
	marginB  = 58
	fontMain = 13
	fontTick = 11
)

type buffer struct {
	sb strings.Builder
}

func (b *buffer) printf(format string, args ...any) {
	fmt.Fprintf(&b.sb, format, args...)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// fmtNum renders an axis number compactly.
func fmtNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}

// niceTicks picks ~n human-friendly tick values covering [0, max].
func niceTicks(max float64, n int) []float64 {
	if max <= 0 {
		return []float64{0, 1}
	}
	rawStep := max / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	for _, m := range []float64{1, 2, 5, 10} {
		step = m * mag
		if step >= rawStep {
			break
		}
	}
	var ticks []float64
	for v := 0.0; v <= max+step/2; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// Series is one named line of a line chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart describes a trace figure.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMax forces the y-axis ceiling (0 = auto).
	YMax float64
}

// WriteSVG renders the chart.
func (c LineChart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("svgplot: line chart with no series")
	}
	xMax, yMax := 0.0, c.YMax
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("svgplot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("svgplot: series %q is empty", s.Name)
		}
		for i := range s.X {
			xMax = math.Max(xMax, s.X[i])
			if c.YMax == 0 {
				yMax = math.Max(yMax, s.Y[i])
			}
		}
	}
	if xMax == 0 {
		xMax = 1
	}
	if yMax == 0 {
		yMax = 1
	}

	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	px := func(x float64) float64 { return marginL + x/xMax*plotW }
	py := func(y float64) float64 { return float64(chartH-marginB) - y/yMax*plotH }

	var b buffer
	header(&b, c.Title)
	axes(&b, c.XLabel, c.YLabel, xMax, yMax, px, py)

	for i, s := range c.Series {
		color := Palette[i%len(Palette)]
		var pts strings.Builder
		for j := range s.X {
			fmt.Fprintf(&pts, "%.1f,%.1f ", px(s.X[j]), py(s.Y[j]))
		}
		b.printf(`<polyline fill="none" stroke="%s" stroke-width="1.6" points="%s"/>`+"\n",
			color, strings.TrimSpace(pts.String()))
		// Legend entry.
		lx := marginL + 10 + 150*i
		b.printf(`<rect x="%d" y="%d" width="12" height="3" fill="%s"/>`+"\n", lx, marginT-16, color)
		b.printf(`<text x="%d" y="%d" font-size="%d">%s</text>`+"\n",
			lx+16, marginT-10, fontTick, esc(s.Name))
	}
	b.printf("</svg>\n")
	_, err := io.WriteString(w, b.sb.String())
	return err
}

// BarGroup is one x-axis entry of a bar chart with one value per series.
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart describes a per-app figure.
type BarChart struct {
	Title   string
	YLabel  string
	Series  []string // names of the per-group values
	Groups  []BarGroup
	YMax    float64 // 0 = auto
	Stacked bool    // stack values instead of grouping side by side
}

// WriteSVG renders the chart.
func (c BarChart) WriteSVG(w io.Writer) error {
	if len(c.Groups) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("svgplot: bar chart with no data")
	}
	yMax := c.YMax
	for _, g := range c.Groups {
		if len(g.Values) != len(c.Series) {
			return fmt.Errorf("svgplot: group %q has %d values, want %d", g.Label, len(g.Values), len(c.Series))
		}
		if c.YMax != 0 {
			continue
		}
		if c.Stacked {
			sum := 0.0
			for _, v := range g.Values {
				sum += math.Max(v, 0)
			}
			yMax = math.Max(yMax, sum)
		} else {
			for _, v := range g.Values {
				yMax = math.Max(yMax, v)
			}
		}
	}
	if yMax <= 0 {
		yMax = 1
	}

	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	py := func(y float64) float64 { return float64(chartH-marginB) - y/yMax*plotH }

	var b buffer
	header(&b, c.Title)
	axes(&b, "", c.YLabel, 0, yMax, nil, py)

	groupW := plotW / float64(len(c.Groups))
	for gi, g := range c.Groups {
		gx := marginL + float64(gi)*groupW
		if c.Stacked {
			base := 0.0
			for si, v := range g.Values {
				if v < 0 {
					v = 0
				}
				top := py(base + v)
				b.printf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					gx+groupW*0.15, top, groupW*0.7, py(base)-top, Palette[si%len(Palette)])
				base += v
			}
		} else {
			barW := groupW * 0.8 / float64(len(c.Series))
			for si, v := range g.Values {
				x := gx + groupW*0.1 + float64(si)*barW
				y0, y1 := py(math.Max(v, 0)), py(0)
				b.printf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					x, y0, barW*0.92, y1-y0, Palette[si%len(Palette)])
			}
		}
		// Rotated group label.
		lx := gx + groupW/2
		ly := float64(chartH - marginB + 10)
		b.printf(`<text x="%.1f" y="%.1f" font-size="%d" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
			lx, ly, fontTick, lx, ly, esc(g.Label))
	}
	// Legend.
	for si, name := range c.Series {
		lx := marginL + 10 + 170*si
		b.printf(`<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			lx, marginT-20, Palette[si%len(Palette)])
		b.printf(`<text x="%d" y="%d" font-size="%d">%s</text>`+"\n",
			lx+14, marginT-11, fontTick, esc(name))
	}
	b.printf("</svg>\n")
	_, err := io.WriteString(w, b.sb.String())
	return err
}

// header opens the SVG document and draws the title.
func header(b *buffer, title string) {
	b.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		chartW, chartH, chartW, chartH)
	b.printf(`<rect width="%d" height="%d" fill="white"/>`+"\n", chartW, chartH)
	b.printf(`<text x="%d" y="16" font-size="%d" font-weight="bold">%s</text>`+"\n",
		chartW/2-len(title)*3, fontMain, esc(title))
}

// axes draws the frame, y ticks and labels; when px is non-nil it also
// draws x ticks for a numeric axis up to xMax.
func axes(b *buffer, xLabel, yLabel string, xMax, yMax float64,
	px func(float64) float64, py func(float64) float64) {
	x0, y0 := float64(marginL), float64(chartH-marginB)
	x1, y1 := float64(chartW-marginR), float64(marginT)
	b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x0, y0, x1, y0)
	b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x0, y0, x0, y1)
	for _, t := range niceTicks(yMax, 5) {
		y := py(t)
		if y < y1-0.5 {
			continue
		}
		b.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cccccc" stroke-dasharray="3,3"/>`+"\n",
			x0, y, x1, y)
		b.printf(`<text x="%.1f" y="%.1f" font-size="%d" text-anchor="end">%s</text>`+"\n",
			x0-6, y+4, fontTick, fmtNum(t))
	}
	if px != nil {
		for _, t := range niceTicks(xMax, 8) {
			x := px(t)
			if x > x1+0.5 {
				continue
			}
			b.printf(`<text x="%.1f" y="%.1f" font-size="%d" text-anchor="middle">%s</text>`+"\n",
				x, y0+16, fontTick, fmtNum(t))
		}
		if xLabel != "" {
			b.printf(`<text x="%.1f" y="%d" font-size="%d" text-anchor="middle">%s</text>`+"\n",
				(x0+x1)/2, chartH-6, fontTick, esc(xLabel))
		}
	}
	if yLabel != "" {
		b.printf(`<text x="14" y="%.1f" font-size="%d" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			(y0+y1)/2, fontTick, (y0+y1)/2, esc(yLabel))
	}
}
