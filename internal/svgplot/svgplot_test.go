package svgplot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the output as XML, which catches unescaped text,
// unbalanced tags and attribute syntax errors.
func wellFormed(t *testing.T, out []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, out)
		}
	}
}

func TestLineChartSVG(t *testing.T) {
	c := LineChart{
		Title:  "Figure 2 <test> & more",
		XLabel: "time (s)",
		YLabel: "fps",
		Series: []Series{
			{Name: "frame rate", X: []float64{0, 1, 2, 3}, Y: []float64{0, 60, 30, 45}},
			{Name: "content", X: []float64{0, 1, 2, 3}, Y: []float64{0, 10, 8, 12}},
		},
		YMax: 60,
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	wellFormed(t, out)
	s := string(out)
	for _, want := range []string{"<svg", "polyline", "frame rate", "&lt;test&gt;", "time (s)"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if n := strings.Count(s, "<polyline"); n != 2 {
		t.Errorf("polylines = %d, want 2", n)
	}
}

func TestLineChartValidation(t *testing.T) {
	if err := (LineChart{}).WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty chart accepted")
	}
	bad := LineChart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("mismatched series accepted")
	}
	empty := LineChart{Series: []Series{{Name: "x"}}}
	if err := empty.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty series accepted")
	}
}

func TestBarChartSVG(t *testing.T) {
	c := BarChart{
		Title:  "Figure 9",
		YLabel: "saved (mW)",
		Series: []string{"section", "+boost"},
		Groups: []BarGroup{
			{Label: "Facebook", Values: []float64{150, 110}},
			{Label: "Jelly Splash", Values: []float64{320, 250}},
			{Label: "MX Player", Values: []float64{98, 86}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	s := buf.String()
	// 3 groups × 2 series bars + 2 legend rects + background.
	if n := strings.Count(s, "<rect"); n != 3*2+2+1 {
		t.Errorf("rects = %d, want 9", n)
	}
	if !strings.Contains(s, "Jelly Splash") {
		t.Error("group label missing")
	}
}

func TestBarChartStacked(t *testing.T) {
	c := BarChart{
		Title:  "Figure 3",
		Series: []string{"meaningful", "redundant"},
		Groups: []BarGroup{
			{Label: "A", Values: []float64{10, 50}},
			{Label: "B", Values: []float64{30, 5}},
		},
		Stacked: true,
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestBarChartValidation(t *testing.T) {
	if err := (BarChart{}).WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty chart accepted")
	}
	bad := BarChart{Series: []string{"a", "b"}, Groups: []BarGroup{{Label: "x", Values: []float64{1}}}}
	if err := bad.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("ragged group accepted")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(60, 5)
	if ticks[0] != 0 || ticks[len(ticks)-1] < 55 {
		t.Errorf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if got := niceTicks(0, 5); len(got) < 2 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func TestFmtNum(t *testing.T) {
	if fmtNum(60) != "60" || fmtNum(2.5) != "2.5" {
		t.Errorf("fmtNum: %q %q", fmtNum(60), fmtNum(2.5))
	}
}
