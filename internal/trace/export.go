package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV writes one or more series as a CSV table with a shared time
// column. Series are aligned by sample index; they must all have the same
// length (use Resample to align series recorded at different cadences).
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("trace: no series to export")
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != n {
			return fmt.Errorf("trace: series %q has %d samples, want %d (resample first)", s.Name, s.Len(), n)
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"t_seconds"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatFloat(series[0].Points[i].T.Seconds(), 'f', 6, 64)
		for j, s := range series {
			row[j+1] = strconv.FormatFloat(s.Points[i].V, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonSeries is the JSON wire form of a Series.
type jsonSeries struct {
	Name    string    `json:"name"`
	Seconds []float64 `json:"t_seconds"`
	Values  []float64 `json:"values"`
}

// WriteJSON writes series as a JSON array of {name, t_seconds, values}
// objects, the format the analysis notebooks in downstream projects tend
// to want.
func WriteJSON(w io.Writer, series ...*Series) error {
	out := make([]jsonSeries, 0, len(series))
	for _, s := range series {
		// Initialize the arrays so an empty series encodes as [] rather
		// than null (nil slices marshal to null, which breaks consumers
		// expecting arrays).
		js := jsonSeries{Name: s.Name, Seconds: []float64{}, Values: []float64{}}
		for _, p := range s.Points {
			js.Seconds = append(js.Seconds, p.T.Seconds())
			js.Values = append(js.Values, p.V)
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// of vs (normal approximation), 0 for fewer than 2 samples. Paired power
// measurements report mean ± CI95 alongside the paper's mean ± std style.
func CI95(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	// Sample (not population) standard deviation for the CI.
	m := Mean(vs)
	sum := 0.0
	for _, v := range vs {
		d := v - m
		sum += d * d
	}
	sd := math.Sqrt(sum / float64(len(vs)-1))
	return 1.96 * sd / math.Sqrt(float64(len(vs)))
}
