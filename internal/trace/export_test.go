package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"ccdem/internal/sim"
)

func exportSeries() (*Series, *Series) {
	a := NewSeries("content")
	b := NewSeries("refresh")
	for i := 0; i < 4; i++ {
		a.Add(sim.Time(i)*sim.Second, float64(i))
		b.Add(sim.Time(i)*sim.Second, float64(10*i))
	}
	return a, b
}

func TestWriteCSV(t *testing.T) {
	a, b := exportSeries()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV lines = %d, want 5", len(lines))
	}
	if lines[0] != "t_seconds,content,refresh" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1.000000,1,10") {
		t.Errorf("row 1 = %q", lines[2])
	}
}

func TestWriteCSVValidation(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("no series accepted")
	}
	a, b := exportSeries()
	b.Add(10*sim.Second, 1) // mismatched length
	if err := WriteCSV(&bytes.Buffer{}, a, b); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	a, b := exportSeries()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, a, b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []struct {
		Name    string    `json:"name"`
		Seconds []float64 `json:"t_seconds"`
		Values  []float64 `json:"values"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 2 || decoded[0].Name != "content" || decoded[1].Name != "refresh" {
		t.Fatalf("decoded = %+v", decoded)
	}
	if len(decoded[0].Values) != 4 || decoded[0].Values[3] != 3 {
		t.Errorf("values = %v", decoded[0].Values)
	}
	if decoded[1].Seconds[2] != 2 {
		t.Errorf("seconds = %v", decoded[1].Seconds)
	}
}

func TestWriteJSONEmptySeriesEncodesArrays(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, NewSeries("empty")); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "null") {
		t.Fatalf("empty series encoded null instead of []:\n%s", out)
	}
	var decoded []struct {
		Seconds []float64 `json:"t_seconds"`
		Values  []float64 `json:"values"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded[0].Seconds == nil || decoded[0].Values == nil {
		t.Fatal("arrays must be present (empty), not absent")
	}
}

func TestCI95(t *testing.T) {
	if CI95(nil) != 0 || CI95([]float64{5}) != 0 {
		t.Error("degenerate CI not 0")
	}
	// 100 identical samples: CI = 0.
	same := make([]float64, 100)
	for i := range same {
		same[i] = 7
	}
	if CI95(same) != 0 {
		t.Error("zero-variance CI not 0")
	}
	// Known case: sd=1, n=100 → CI ≈ 0.196.
	vs := make([]float64, 100)
	for i := range vs {
		if i%2 == 0 {
			vs[i] = 1
		} else {
			vs[i] = -1
		}
	}
	// sample sd of ±1 alternating ≈ 1.005
	got := CI95(vs)
	if math.Abs(got-0.197) > 0.01 {
		t.Errorf("CI95 = %v, want ≈0.197", got)
	}
}
