// Package trace provides the measurement plumbing shared by all
// experiments: time series of sampled values, sliding-window event-rate
// counters (frame rate, content rate), summary statistics, and a small
// text renderer for trace figures.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ccdem/internal/sim"
)

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series with a name used in figure output.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample. Samples must be appended in non-decreasing time
// order; out-of-order appends panic because they indicate a simulation bug.
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("trace: out-of-order sample at %v after %v", t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{t, v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Reset empties the series in place, keeping the points' capacity — the
// recycling path for fleet device reuse, where a series is refilled every
// run and reallocating it per device would defeat the point.
func (s *Series) Reset() { s.Points = s.Points[:0] }

// Values returns just the sample values, in time order.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vs[i] = p.V
	}
	return vs
}

// Mean returns the arithmetic mean of the sample values (0 when empty).
func (s *Series) Mean() float64 { return Mean(s.Values()) }

// Max returns the maximum sample value (0 when empty).
func (s *Series) Max() float64 {
	m := 0.0
	for i, p := range s.Points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// Between returns the sub-series with t0 <= T < t1 (sharing storage).
func (s *Series) Between(t0, t1 sim.Time) *Series {
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= t0 })
	hi := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= t1 })
	return &Series{Name: s.Name, Points: s.Points[lo:hi]}
}

// Resample returns the series averaged into fixed dt buckets starting at
// t=0; empty buckets repeat the previous bucket's value (0 before any
// sample). This is what the figure renderers plot.
func (s *Series) Resample(dt sim.Time, until sim.Time) *Series {
	if dt <= 0 {
		panic("trace: non-positive resample interval")
	}
	out := NewSeries(s.Name)
	i := 0
	last := 0.0
	for t := sim.Time(0); t < until; t += dt {
		sum, n := 0.0, 0
		for i < len(s.Points) && s.Points[i].T < t+dt {
			sum += s.Points[i].V
			n++
			i++
		}
		if n > 0 {
			last = sum / float64(n)
		}
		out.Add(t, last)
	}
	return out
}

// RateCounter measures an event rate over a sliding time window, e.g.
// frames per second or content updates per second. The paper's meter
// reports the content rate the same way: events within the last second.
//
// Timestamps live in a ring buffer that grows only while the window's
// occupancy exceeds the current capacity, so per-frame Note calls are
// allocation-free in steady state (a 60 Hz frame stream over a 1 s window
// settles at 64 slots and never allocates again).
type RateCounter struct {
	window sim.Time
	buf    []sim.Time // ring storage; buf[head] is the oldest event
	head   int
	n      int // events currently in the window
	total  uint64
}

// NewRateCounter creates a counter with the given sliding window (must be
// positive). The paper uses a one-second window, the natural unit of FPS.
func NewRateCounter(window sim.Time) *RateCounter {
	if window <= 0 {
		panic("trace: non-positive rate window")
	}
	return &RateCounter{window: window}
}

// Note records an event at time t. Events must arrive in non-decreasing
// time order.
func (rc *RateCounter) Note(t sim.Time) {
	if rc.n > 0 && t < rc.buf[(rc.head+rc.n-1)%len(rc.buf)] {
		panic(fmt.Sprintf("trace: out-of-order event at %v", t))
	}
	rc.prune(t)
	if rc.n == len(rc.buf) {
		rc.grow()
	}
	rc.buf[(rc.head+rc.n)%len(rc.buf)] = t
	rc.n++
	rc.total++
}

// grow doubles the ring, linearizing the live events to the front.
func (rc *RateCounter) grow() {
	cap := 2 * len(rc.buf)
	if cap == 0 {
		cap = 16
	}
	nb := make([]sim.Time, cap)
	for i := 0; i < rc.n; i++ {
		nb[i] = rc.buf[(rc.head+i)%len(rc.buf)]
	}
	rc.buf = nb
	rc.head = 0
}

func (rc *RateCounter) prune(now sim.Time) {
	for rc.n > 0 && rc.buf[rc.head] <= now-rc.window {
		rc.head++
		if rc.head == len(rc.buf) {
			rc.head = 0
		}
		rc.n--
	}
}

// Reset forgets every event, keeping the ring's capacity, so a recycled
// counter observes its next event stream allocation-free from the start.
func (rc *RateCounter) Reset() {
	rc.head = 0
	rc.n = 0
	rc.total = 0
}

// Rate returns the event rate (events per second) over the window ending
// at now.
func (rc *RateCounter) Rate(now sim.Time) float64 {
	rc.prune(now)
	return float64(rc.n) / rc.window.Seconds()
}

// Total returns the number of events ever noted.
func (rc *RateCounter) Total() uint64 { return rc.total }

// Mean returns the arithmetic mean of vs, 0 when empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Std returns the population standard deviation of vs, 0 when len < 2.
func Std(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := Mean(vs)
	sum := 0.0
	for _, v := range vs {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(vs)))
}

// Percentile returns the p-th percentile (0–100) of vs using linear
// interpolation, 0 when empty. The paper reports "for 80% of applications"
// figures, i.e. the 80th percentile across the app population.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDFPoint is one step of an empirical CDF: Frac of the population has a
// value ≤ Value.
type CDFPoint struct {
	Value, Frac float64
}

// CDF returns the empirical CDF of vs: one point per distinct value, sorted
// by value, each carrying the fraction of samples ≤ that value.
func CDF(vs []float64) []CDFPoint {
	if len(vs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	var out []CDFPoint
	for i, v := range sorted {
		frac := float64(i+1) / float64(len(sorted))
		if n := len(out); n > 0 && out[n-1].Value == v {
			out[n-1].Frac = frac
			continue
		}
		out = append(out, CDFPoint{Value: v, Frac: frac})
	}
	return out
}

// Sparkline renders vs as a one-line unicode chart, used by the example
// programs and the CLI's trace views.
func Sparkline(vs []float64, width int) string {
	if len(vs) == 0 || width <= 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	// Downsample/average to width buckets.
	buckets := make([]float64, width)
	for i := range buckets {
		lo := i * len(vs) / width
		hi := (i + 1) * len(vs) / width
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(vs) {
			hi = len(vs)
		}
		buckets[i] = Mean(vs[lo:hi])
	}
	maxV := 0.0
	for _, v := range buckets {
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	for _, v := range buckets {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}
