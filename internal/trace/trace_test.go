package trace

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ccdem/internal/sim"
)

func TestSeriesAddAndStats(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 1)
	s.Add(sim.Second, 3)
	s.Add(2*sim.Second, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(sim.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	s.Add(0, 2)
}

func TestSeriesBetween(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i)*sim.Second, float64(i))
	}
	sub := s.Between(3*sim.Second, 6*sim.Second)
	if sub.Len() != 3 {
		t.Fatalf("Between len = %d, want 3", sub.Len())
	}
	if sub.Points[0].V != 3 || sub.Points[2].V != 5 {
		t.Errorf("Between contents wrong: %v", sub.Points)
	}
}

func TestSeriesResample(t *testing.T) {
	s := NewSeries("x")
	s.Add(100*sim.Millisecond, 2)
	s.Add(200*sim.Millisecond, 4)
	s.Add(1500*sim.Millisecond, 10)
	r := s.Resample(sim.Second, 3*sim.Second)
	if r.Len() != 3 {
		t.Fatalf("resampled len = %d, want 3", r.Len())
	}
	if r.Points[0].V != 3 { // mean of 2 and 4
		t.Errorf("bucket 0 = %v, want 3", r.Points[0].V)
	}
	if r.Points[1].V != 10 {
		t.Errorf("bucket 1 = %v, want 10", r.Points[1].V)
	}
	if r.Points[2].V != 10 { // empty bucket holds previous value
		t.Errorf("bucket 2 = %v, want carried 10", r.Points[2].V)
	}
}

func TestRateCounterWindow(t *testing.T) {
	rc := NewRateCounter(sim.Second)
	for i := 0; i < 30; i++ {
		rc.Note(sim.Time(i) * 33 * sim.Millisecond) // ~30 events in 1s
	}
	now := sim.Time(29 * 33 * sim.Millisecond)
	got := rc.Rate(now)
	if got < 29 || got > 31 {
		t.Errorf("Rate = %v, want ≈30", got)
	}
	// After 2 idle seconds, the rate decays to zero.
	if got := rc.Rate(now + 2*sim.Second); got != 0 {
		t.Errorf("Rate after idle = %v, want 0", got)
	}
	if rc.Total() != 30 {
		t.Errorf("Total = %d, want 30", rc.Total())
	}
}

func TestRateCounterExactWindowEdge(t *testing.T) {
	rc := NewRateCounter(sim.Second)
	rc.Note(0)
	// An event exactly one window old has left the window (window is
	// half-open: (now-window, now]).
	if got := rc.Rate(sim.Second); got != 0 {
		t.Errorf("Rate at exact window edge = %v, want 0", got)
	}
	rc2 := NewRateCounter(sim.Second)
	rc2.Note(1)
	if got := rc2.Rate(sim.Second); got != 1 {
		t.Errorf("Rate just inside window = %v, want 1", got)
	}
}

func TestMeanStd(t *testing.T) {
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Std(vs); math.Abs(got-2) > 1e-9 {
		t.Errorf("Std = %v, want 2", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("degenerate stats not zero")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {80, 42},
	}
	for _, c := range cases {
		if got := Percentile(vs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF distinct points = %d, want 3", len(pts))
	}
	if pts[0].Value != 1 || math.Abs(pts[0].Frac-0.25) > 1e-9 {
		t.Errorf("CDF[0] = %+v", pts[0])
	}
	if pts[1].Value != 2 || math.Abs(pts[1].Frac-0.75) > 1e-9 {
		t.Errorf("CDF[1] = %+v", pts[1])
	}
	if pts[2].Value != 3 || math.Abs(pts[2].Frac-1) > 1e-9 {
		t.Errorf("CDF[2] = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) != nil")
	}
}

func TestSparkline(t *testing.T) {
	line := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(line)) != 8 {
		t.Fatalf("sparkline width = %d, want 8", len([]rune(line)))
	}
	runes := []rune(line)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline extremes = %q", line)
	}
	if Sparkline(nil, 10) != "" {
		t.Error("empty sparkline not empty string")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(vs, p)
			if v < prev || v < sorted[0] || v > sorted[len(sorted)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the rate counter's reported rate times the window equals the
// number of events strictly inside the window.
func TestRateCounterCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		rc := NewRateCounter(sim.Second)
		var times []sim.Time
		tcur := sim.Time(0)
		for i := 0; i < 200; i++ {
			tcur += sim.Time(rng.Intn(40)) * sim.Millisecond
			times = append(times, tcur)
			rc.Note(tcur)
		}
		now := tcur
		want := 0
		for _, et := range times {
			if et > now-sim.Second && et <= now {
				want++
			}
		}
		if got := rc.Rate(now); got != float64(want) {
			t.Fatalf("iter %d: rate %v, want %d", iter, got, want)
		}
	}
}

func TestRateCounterOutOfOrderPanics(t *testing.T) {
	rc := NewRateCounter(sim.Second)
	rc.Note(sim.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Note did not panic")
		}
	}()
	rc.Note(0)
}

// TestRateCounterRingWraparound drives the ring through many grow/wrap
// cycles with an irregular event pattern and cross-checks every Rate
// reading against a naive sliding-window reference.
func TestRateCounterRingWraparound(t *testing.T) {
	rc := NewRateCounter(sim.Second)
	var ref []sim.Time
	refRate := func(now sim.Time) float64 {
		n := 0
		for _, e := range ref {
			if e > now-sim.Second {
				n++
			}
		}
		return float64(n)
	}
	tm := sim.Time(0)
	for i := 0; i < 5000; i++ {
		// Bursts followed by gaps: occupancy swings from 0 to hundreds,
		// forcing growth, full drains, and head wraparound.
		if i%700 < 500 {
			tm += 3 * sim.Millisecond
		} else {
			tm += 40 * sim.Millisecond
		}
		rc.Note(tm)
		ref = append(ref, tm)
		if got, want := rc.Rate(tm), refRate(tm); got != want {
			t.Fatalf("event %d at %v: Rate = %v, ref = %v", i, tm, got, want)
		}
	}
	if rc.Total() != 5000 {
		t.Errorf("Total = %d, want 5000", rc.Total())
	}
}

// TestRateCounterSteadyStateZeroAlloc: after one window of 60 Hz events the
// ring has reached capacity and Note must not allocate again.
func TestRateCounterSteadyStateZeroAlloc(t *testing.T) {
	rc := NewRateCounter(sim.Second)
	tm := sim.Time(0)
	note := func() {
		tm += sim.Hz(60)
		rc.Note(tm)
	}
	for i := 0; i < 200; i++ {
		note()
	}
	if allocs := testing.AllocsPerRun(1000, note); allocs != 0 {
		t.Errorf("steady-state Note allocates %.1f per event, want 0", allocs)
	}
}

// TestRateCounterOutOfOrderPanicsAfterWrap: the order check must compare
// against the newest event even when it sits mid-ring.
func TestRateCounterOutOfOrderPanicsAfterWrap(t *testing.T) {
	rc := NewRateCounter(sim.Second)
	tm := sim.Time(0)
	for i := 0; i < 300; i++ {
		tm += 7 * sim.Millisecond
		rc.Note(tm)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Note after ring wrap did not panic")
		}
	}()
	rc.Note(tm - sim.Millisecond)
}
