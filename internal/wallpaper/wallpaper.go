// Package wallpaper models the live-wallpaper workload of the paper's
// metering-accuracy experiment (§4.1, Figure 6). The paper found ordinary
// live wallpapers trivially easy to meter (every frame changes much of the
// screen), so it configured an extreme case — the "Nexus Revampled"
// wallpaper — that continuously moves small dots across the screen. Small
// dots can slip between the sample points of a sparse comparison grid,
// which is exactly the error source Figure 6 quantifies per grid size.
package wallpaper

import (
	"fmt"
	"math/rand"

	"ccdem/internal/framebuffer"
	"ccdem/internal/sim"
	"ccdem/internal/surface"
)

// Config tunes the dot field.
type Config struct {
	// Dots is the number of moving dots. Default 6 — few enough that a
	// sparse grid often misses a frame's changes entirely.
	Dots int
	// DotSize is the square dot edge in pixels. Small relative to the
	// comparison grid stride makes metering hard. Default 5.
	DotSize int
	// Speed is how far each dot moves per content frame (px). Default 3.
	Speed int
	// FPS is the wallpaper's content rate; the paper's accuracy runs use
	// wallpapers below 25 fps. Default 20.
	FPS float64
	// Seed fixes dot placement and motion.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Dots == 0 {
		c.Dots = 6
	}
	if c.DotSize == 0 {
		c.DotSize = 5
	}
	if c.Speed == 0 {
		c.Speed = 3
	}
	if c.FPS == 0 {
		c.FPS = 20
	}
}

// Validate reports configuration errors (after defaulting).
func (c Config) Validate() error {
	if c.Dots < 0 || c.DotSize < 0 || c.Speed < 0 || c.FPS < 0 {
		return fmt.Errorf("wallpaper: negative config value: %+v", c)
	}
	if c.FPS > 60 {
		return fmt.Errorf("wallpaper: FPS %v above the 60 Hz ceiling", c.FPS)
	}
	return nil
}

type dot struct {
	x, y, dx, dy int
}

// Wallpaper is a running dot-field workload bound to a surface.
type Wallpaper struct {
	cfg  Config
	eng  *sim.Engine
	srf  *surface.Surface
	w, h int
	rng  *rand.Rand
	dots []dot
	prev []dot

	seq      uint64
	drawnSeq uint64
	damage   framebuffer.Region

	contentFrames uint64 // latched frames whose pixels actually changed
	ticker        *sim.Ticker
}

// New validates cfg (with defaults applied) and creates an unstarted
// wallpaper.
func New(cfg Config) (*Wallpaper, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Wallpaper{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Attach binds the wallpaper to an engine and surface manager and starts
// its content clock.
func (wp *Wallpaper) Attach(eng *sim.Engine, mgr *surface.Manager) {
	if wp.eng != nil {
		panic("wallpaper: Attach called twice")
	}
	wp.eng = eng
	wp.w = mgr.Framebuffer().Width()
	wp.h = mgr.Framebuffer().Height()
	wp.srf = mgr.NewSurface("wallpaper", 0, wp)
	wp.dots = make([]dot, wp.cfg.Dots)
	for i := range wp.dots {
		wp.dots[i] = dot{
			x:  wp.rng.Intn(wp.w - wp.cfg.DotSize),
			y:  wp.rng.Intn(wp.h - wp.cfg.DotSize),
			dx: wp.cfg.Speed * sgn(wp.rng),
			dy: wp.cfg.Speed * sgn(wp.rng),
		}
	}
	wp.srf.Buffer().FillAll(framebuffer.RGB(8, 8, 16))
	wp.paint(wp.srf.Buffer())
	wp.srf.RequestFrame()
	wp.ticker = eng.Every(eng.Now()+sim.Hz(wp.cfg.FPS), sim.Hz(wp.cfg.FPS), wp.tick)
}

func sgn(rng *rand.Rand) int {
	if rng.Intn(2) == 0 {
		return 1
	}
	return -1
}

// Stop halts the content clock.
func (wp *Wallpaper) Stop() {
	if wp.ticker != nil {
		wp.ticker.Stop()
	}
}

func (wp *Wallpaper) tick() {
	wp.seq++
	for i := range wp.dots {
		d := &wp.dots[i]
		d.x += d.dx
		d.y += d.dy
		if d.x < 0 {
			d.x, d.dx = 0, -d.dx
		}
		if d.x > wp.w-wp.cfg.DotSize {
			d.x, d.dx = wp.w-wp.cfg.DotSize, -d.dx
		}
		if d.y < 0 {
			d.y, d.dy = 0, -d.dy
		}
		if d.y > wp.h-wp.cfg.DotSize {
			d.y, d.dy = wp.h-wp.cfg.DotSize, -d.dy
		}
	}
	wp.srf.RequestFrame()
}

// RenderRegion implements surface.RegionClient: each dot's erase and draw
// rectangle is tracked individually — small disjoint damage is exactly
// what makes this workload hard for the grid meter.
func (wp *Wallpaper) RenderRegion(t sim.Time, buf *framebuffer.Buffer) (*framebuffer.Region, int) {
	wp.damage.Reset()
	if wp.drawnSeq == wp.seq && wp.drawnSeq != 0 {
		return &wp.damage, 0
	}
	wp.paint(buf)
	wp.drawnSeq = wp.seq
	wp.contentFrames++
	return &wp.damage, wp.damage.Area()
}

// Render implements surface.Client (bounding-box fallback).
func (wp *Wallpaper) Render(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int) {
	region, cost := wp.RenderRegion(t, buf)
	return region.Bounds(), cost
}

func (wp *Wallpaper) paint(buf *framebuffer.Buffer) {
	bg := framebuffer.RGB(8, 8, 16)
	for _, d := range wp.prev {
		r := framebuffer.R(d.x, d.y, d.x+wp.cfg.DotSize, d.y+wp.cfg.DotSize)
		buf.Fill(r, bg)
		wp.damage.Add(r)
	}
	wp.prev = wp.prev[:0]
	for i, d := range wp.dots {
		r := framebuffer.R(d.x, d.y, d.x+wp.cfg.DotSize, d.y+wp.cfg.DotSize)
		buf.Fill(r, framebuffer.RGB(200, 220, uint8(40+i*7)))
		wp.damage.Add(r)
		wp.prev = append(wp.prev, d)
	}
}

// ContentFrames returns the ground-truth count of latched frames that
// changed pixels — the denominator of the Figure 6 error rate.
func (wp *Wallpaper) ContentFrames() uint64 { return wp.contentFrames }
