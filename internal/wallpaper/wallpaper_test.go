package wallpaper

import (
	"testing"

	"ccdem/internal/core"
	"ccdem/internal/framebuffer"
	"ccdem/internal/power"
	"ccdem/internal/sim"
	"ccdem/internal/surface"
)

func runWallpaper(t *testing.T, cfg Config, samples int, d sim.Time) (truth uint64, measured uint64) {
	t.Helper()
	eng := sim.NewEngine()
	mgr := surface.NewManager(eng, 720, 1280)
	wp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wp.Attach(eng, mgr)
	meter, err := core.NewMeter(core.MeterConfig{
		Grid:   framebuffer.GridForSamples(720, 1280, samples),
		Window: sim.Second,
		Cost:   power.CompareCostModel{},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.OnFrame(func(fi surface.FrameInfo) { meter.ObserveFrame(fi.T, mgr.Framebuffer()) })
	eng.Every(sim.Hz(60), sim.Hz(60), func() { mgr.VSync(eng.Now(), 60) })
	eng.RunUntil(d)
	_, content := meter.Totals()
	return wp.ContentFrames(), content
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dots: -1}); err == nil {
		t.Error("negative dots accepted")
	}
	if _, err := New(Config{FPS: 120}); err == nil {
		t.Error("FPS above 60 accepted")
	}
}

func TestWallpaperProducesContentFrames(t *testing.T) {
	truth, _ := runWallpaper(t, Config{Seed: 1}, 921600, 5*sim.Second)
	// 20 fps default for 5 s ≈ 100 content frames (+1 initial).
	if truth < 95 || truth > 105 {
		t.Errorf("ground-truth content frames = %d, want ≈100", truth)
	}
}

func TestFullGridIsExact(t *testing.T) {
	truth, measured := runWallpaper(t, Config{Seed: 2}, 921600, 5*sim.Second)
	if measured != truth {
		t.Errorf("full-resolution grid measured %d of %d content frames", measured, truth)
	}
}

func TestSparseGridUndercounts(t *testing.T) {
	truth, measured := runWallpaper(t, Config{Seed: 3}, 2304, 5*sim.Second)
	if measured >= truth {
		t.Errorf("2K grid measured %d of %d — expected undercount on small dots", measured, truth)
	}
	// The Figure 6 shape: a 2K grid misses a substantial share.
	if float64(measured)/float64(truth) > 0.9 {
		t.Errorf("2K grid error too small: %d/%d", measured, truth)
	}
}

func TestDenseGridIsAccurate(t *testing.T) {
	truth, measured := runWallpaper(t, Config{Seed: 4}, 36864, 5*sim.Second)
	if float64(measured)/float64(truth) < 0.9 {
		t.Errorf("36K grid accuracy %d/%d below 90%%", measured, truth)
	}
}

func TestDeterminism(t *testing.T) {
	t1, m1 := runWallpaper(t, Config{Seed: 9}, 9216, 3*sim.Second)
	t2, m2 := runWallpaper(t, Config{Seed: 9}, 9216, 3*sim.Second)
	if t1 != t2 || m1 != m2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", t1, m1, t2, m2)
	}
}

func TestStop(t *testing.T) {
	eng := sim.NewEngine()
	mgr := surface.NewManager(eng, 360, 640)
	wp, err := New(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wp.Attach(eng, mgr)
	eng.Every(sim.Hz(60), sim.Hz(60), func() { mgr.VSync(eng.Now(), 60) })
	eng.RunUntil(2 * sim.Second)
	wp.Stop()
	eng.RunUntil(2*sim.Second + 100*sim.Millisecond) // drain the pending frame request
	n := wp.ContentFrames()
	eng.RunUntil(4 * sim.Second)
	if wp.ContentFrames() != n {
		t.Error("wallpaper advanced after Stop")
	}
}
