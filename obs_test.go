package ccdem_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/fleet"
	"ccdem/internal/input"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// obsRun executes one governed Jelly Splash run with the given sinks and
// returns its stats.
func obsRun(t *testing.T, rec *obs.Recorder, reg *obs.Registry) ccdem.Stats {
	t.Helper()
	p, _ := app.ByName("Jelly Splash")
	mk, err := input.NewMonkey(7, input.DefaultMonkeyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ccdem.NewDevice(ccdem.Config{
		Governor: ccdem.GovernorSectionBoost,
		Recorder: rec,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.InstallApp(p); err != nil {
		t.Fatal(err)
	}
	dev.PlayScript(mk.Script(15*sim.Second, 720, 1280))
	dev.Run(15 * sim.Second)
	dev.FinishObs()
	return dev.Stats()
}

// TestObsDoesNotPerturbSimulation is the determinism contract: a device
// with recorder and metrics attached must produce exactly the statistics
// of an uninstrumented device on the same seed.
func TestObsDoesNotPerturbSimulation(t *testing.T) {
	plain := obsRun(t, nil, nil)
	instrumented := obsRun(t, obs.NewRecorder(0), obs.NewRegistry())
	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatalf("instrumented run diverged:\nplain:        %+v\ninstrumented: %+v", plain, instrumented)
	}
}

// TestObsEventStreamReproducible: two instrumented runs on the same seed
// record identical event streams.
func TestObsEventStreamReproducible(t *testing.T) {
	r1, r2 := obs.NewRecorder(0), obs.NewRecorder(0)
	obsRun(t, r1, nil)
	obsRun(t, r2, nil)
	e1, e2 := r1.Events(), r2.Events()
	if len(e1) == 0 {
		t.Fatal("no events recorded")
	}
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

// TestObsRecorderCoverage: a governed interactive run exercises every
// instrumented subsystem.
func TestObsRecorderCoverage(t *testing.T) {
	rec := obs.NewRecorder(0)
	stats := obsRun(t, rec, nil)
	kinds := map[obs.Kind]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []obs.Kind{
		obs.KindDeviceStart, obs.KindDeviceEnd, obs.KindFrameSubmitted,
		obs.KindGridCompare, obs.KindSectionTransition, obs.KindTouchInput,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v events recorded (have %v)", want, kinds)
		}
	}
	if stats.RefreshSwitches > 0 && kinds[obs.KindSectionTransition] != int(stats.RefreshSwitches) {
		t.Errorf("SectionTransition events = %d, panel switches = %d",
			kinds[obs.KindSectionTransition], stats.RefreshSwitches)
	}
	if stats.BoostCount > 0 && kinds[obs.KindTouchBoost] != int(stats.BoostCount) {
		t.Errorf("TouchBoost events = %d, booster touches = %d",
			kinds[obs.KindTouchBoost], stats.BoostCount)
	}
}

// TestObsMetricsSnapshot: FinishObs counters agree with the device's own
// statistics.
func TestObsMetricsSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	stats := obsRun(t, nil, reg)
	frames := reg.Counter("frames_total").Value()
	content := reg.Counter("content_frames_total").Value()
	redundant := reg.Counter("redundant_frames_total").Value()
	if frames == 0 || content == 0 {
		t.Fatalf("counters empty: frames=%d content=%d", frames, content)
	}
	if frames != content+redundant {
		t.Errorf("frames_total %d != content %d + redundant %d", frames, content, redundant)
	}
	if got := reg.Counter("refresh_switches_total").Value(); got != stats.RefreshSwitches {
		t.Errorf("refresh_switches_total = %d, stats = %d", got, stats.RefreshSwitches)
	}
	if h := reg.Histogram("compare_cost_us", obs.CompareCostBucketsUS); h.Count() != frames {
		t.Errorf("compare_cost_us observations = %d, want one per frame (%d)", h.Count(), frames)
	}
	// Refresh-level residency must cover the whole session.
	var residency uint64
	for _, hz := range []int{20, 24, 30, 40, 60} {
		residency += reg.Counter(residencyName(hz)).Value()
	}
	if want := reg.Counter("sim_time_us").Value(); residency != want {
		t.Errorf("residency sums to %d µs, want the full session %d µs", residency, want)
	}
}

func residencyName(hz int) string {
	switch hz {
	case 20:
		return "refresh_residency_us_hz20"
	case 24:
		return "refresh_residency_us_hz24"
	case 30:
		return "refresh_residency_us_hz30"
	case 40:
		return "refresh_residency_us_hz40"
	default:
		return "refresh_residency_us_hz60"
	}
}

// TestFleetObsDeterministicAcrossWorkers: a cohort's exported trace and
// merged metrics are byte-identical at any pool width.
func TestFleetObsDeterministicAcrossWorkers(t *testing.T) {
	runFleet := func(workers int) ([]byte, []byte) {
		cohort := fleet.Cohort{
			Devices: 6,
			Seed:    11,
			Session: 4 * sim.Second,
			Obs:     obs.NewCollector(0),
		}
		if _, err := cohort.Run(context.Background(), fleet.Pool{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		var tr, m bytes.Buffer
		if err := cohort.Obs.WriteTrace(&tr); err != nil {
			t.Fatal(err)
		}
		if err := cohort.Obs.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		return tr.Bytes(), m.Bytes()
	}
	t1, m1 := runFleet(1)
	t2, m2 := runFleet(5)
	if !bytes.Equal(t1, t2) {
		t.Error("fleet trace depends on worker count")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("fleet merged metrics depend on worker count")
	}
	if len(t1) == 0 || !bytes.HasPrefix(bytes.TrimSpace(t1), []byte("[")) {
		t.Error("trace is not a JSON array")
	}
}
