package ccdem

import (
	"math"
	"testing"

	"ccdem/internal/core"
	"ccdem/internal/display"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

// TestPredictorMatchesSimulation validates the offline what-if estimator:
// a baseline run's frame log, replayed analytically through
// core.PredictSection, must land close to the power an actual
// section-governed simulation measures on the same workload and script.
func TestPredictorMatchesSimulation(t *testing.T) {
	const dur = 30 * sim.Second
	mk, err := input.NewMonkey(31, input.DefaultMonkeyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := mk.Script(dur, 720, 1280)

	for _, appName := range []string{"Jelly Splash", "Cash Slide", "MX Player"} {
		appName := appName
		t.Run(appName, func(t *testing.T) {
			// Baseline run with frame recording.
			base := mustDevice(t, Config{Governor: GovernorOff})
			mustApp(t, base, appName)
			base.RecordFrames(true)
			base.PlayScript(sc)
			base.Run(dur)
			log := base.FrameLog()
			if len(log) == 0 {
				t.Fatal("empty frame log")
			}

			// Ground truth: the actual section-governed simulation.
			gov := mustDevice(t, Config{Governor: GovernorSection})
			mustApp(t, gov, appName)
			gov.PlayScript(sc)
			gov.Run(dur)
			actual := gov.Stats()

			// Offline prediction from the baseline log.
			pred, err := core.PredictSection(log, dur, core.PredictorConfig{
				Levels: display.GalaxyS3Levels,
			})
			if err != nil {
				t.Fatal(err)
			}

			relErr := math.Abs(pred.MeanPowerMW-actual.MeanPowerMW) / actual.MeanPowerMW
			if relErr > 0.10 {
				t.Errorf("predicted %v mW vs simulated %v mW (%.1f%% error)",
					pred.MeanPowerMW, actual.MeanPowerMW, 100*relErr)
			}
			if hzErr := math.Abs(pred.MeanRefreshHz - actual.MeanRefreshHz); hzErr > 8 {
				t.Errorf("predicted refresh %v Hz vs simulated %v Hz",
					pred.MeanRefreshHz, actual.MeanRefreshHz)
			}
			// The prediction must also agree that savings exist relative
			// to the recorded baseline.
			if saved := base.Stats().MeanPowerMW - pred.MeanPowerMW; saved < 0 {
				t.Errorf("prediction shows negative saving: %v mW", saved)
			}
		})
	}
}

func TestPredictorValidation(t *testing.T) {
	if _, err := core.PredictSection(nil, 0, core.PredictorConfig{Levels: display.GalaxyS3Levels}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := core.PredictSection(nil, sim.Second, core.PredictorConfig{}); err == nil {
		t.Error("empty levels accepted")
	}
	out := []core.FrameRecord{{T: 2 * sim.Second}, {T: sim.Second}}
	if _, err := core.PredictSection(out, 3*sim.Second, core.PredictorConfig{Levels: display.GalaxyS3Levels}); err == nil {
		t.Error("out-of-order records accepted")
	}
}

func TestPredictorEmptyLogIsFloorPower(t *testing.T) {
	pred, err := core.PredictSection(nil, 10*sim.Second, core.PredictorConfig{
		Levels: display.GalaxyS3Levels,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.FrameRate != 0 || pred.ContentRate != 0 {
		t.Errorf("empty log rates = %v/%v", pred.FrameRate, pred.ContentRate)
	}
	// With no content the governor settles at the minimum level after the
	// first period, so mean refresh sits just above 20 Hz.
	if pred.MeanRefreshHz < 20 || pred.MeanRefreshHz > 25 {
		t.Errorf("empty-log mean refresh = %v, want ≈20-22", pred.MeanRefreshHz)
	}
	if pred.MeanPowerMW < 400 || pred.MeanPowerMW > 700 {
		t.Errorf("empty-log floor power = %v mW", pred.MeanPowerMW)
	}
}

func TestRecordFramesOffByDefault(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorOff})
	mustApp(t, d, "Weather")
	d.Run(2 * sim.Second)
	if d.FrameLog() != nil {
		t.Error("frame log recorded without RecordFrames(true)")
	}
}
