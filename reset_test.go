package ccdem_test

import (
	"reflect"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/input"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// resetRunConfigs is a spread of device configurations that exercise the
// reuse paths: same screen and grid (buffers and lattices recycled), a
// different metering grid (lattices rebuilt), different screen dimensions
// (everything pixel-sized rebuilt), and governor changes.
func resetRunConfigs() []ccdem.Config {
	return []ccdem.Config{
		{Governor: ccdem.GovernorSectionBoost},
		{Governor: ccdem.GovernorSection},
		{Governor: ccdem.GovernorSectionBoost, MeterSamples: 1024},
		{Governor: ccdem.GovernorNaive, Width: 480, Height: 800},
		{Governor: ccdem.GovernorOff},
	}
}

// driveDevice replays a deterministic script on the device (app already
// installed) and returns the run's stats.
func driveDevice(t *testing.T, dev *ccdem.Device, seed int64, dur sim.Time) ccdem.Stats {
	t.Helper()
	mk, err := input.NewMonkey(seed, input.DefaultMonkeyConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, h := 720, 1280
	dev.PlayScript(mk.Script(dur, w, h))
	dev.Run(dur)
	dev.FinishObs()
	return dev.Stats()
}

// TestDeviceResetMatchesFresh is the reuse contract of the fleet engine:
// a Reset device must be indistinguishable from a freshly constructed one
// — identical statistics AND an identical decision-event stream — for
// every transition between the configurations above, including screen and
// grid geometry changes. The device is deliberately left mid-state (run
// history, installed apps, recorded traces) before each Reset.
func TestDeviceResetMatchesFresh(t *testing.T) {
	apps := []string{"Jelly Splash", "Facebook", "KakaoTalk", "MX Player", "Naver"}
	cfgs := resetRunConfigs()

	type outcome struct {
		stats  ccdem.Stats
		events []obs.Event
	}
	run := func(dev *ccdem.Device, step int) outcome {
		st := driveDevice(t, dev, int64(100+step), 5*sim.Second)
		return outcome{stats: st}
	}

	// Reference: a fresh device per step.
	fresh := make([]outcome, len(cfgs))
	freshEvents := make([][]obs.Event, len(cfgs))
	for i, cfg := range cfgs {
		rec := obs.NewRecorder(0)
		cfg.Recorder = rec
		dev, err := ccdem.NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.InstallApp(mustApp(t, apps[i])); err != nil {
			t.Fatal(err)
		}
		fresh[i] = run(dev, i)
		freshEvents[i] = rec.Events()
	}

	// One device reused across every step.
	var dev *ccdem.Device
	for i, cfg := range cfgs {
		rec := obs.NewRecorder(0)
		cfg.Recorder = rec
		var err error
		if dev == nil {
			dev, err = ccdem.NewDevice(cfg)
		} else {
			err = dev.Reset(cfg)
		}
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if _, err := dev.InstallApp(mustApp(t, apps[i])); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got := run(dev, i)
		if !reflect.DeepEqual(got.stats, fresh[i].stats) {
			t.Errorf("step %d (%s): reset device stats diverged:\nfresh: %+v\nreset: %+v",
				i, apps[i], fresh[i].stats, got.stats)
		}
		gotEvents := rec.Events()
		if !reflect.DeepEqual(gotEvents, freshEvents[i]) {
			t.Errorf("step %d (%s): reset device recorded %d events, fresh %d — decision streams must be bit-identical",
				i, apps[i], len(gotEvents), len(freshEvents[i]))
		}
	}
}

// TestDeviceResetRejectsBadConfig: a failed Reset reports the error and
// leaves the device explicitly unusable rather than half-configured.
func TestDeviceResetRejectsBadConfig(t *testing.T) {
	dev, err := ccdem.NewDevice(ccdem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Reset(ccdem.Config{Width: -1}); err == nil {
		t.Fatal("Reset accepted a negative width")
	}
	if err := dev.Reset(ccdem.Config{Brightness: 7}); err == nil {
		t.Fatal("Reset accepted an out-of-range brightness")
	}
}

func mustApp(t *testing.T, name string) app.Params {
	t.Helper()
	p, ok := app.ByName(name)
	if !ok {
		t.Fatalf("app %q not in catalog", name)
	}
	return p
}
