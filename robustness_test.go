package ccdem

import (
	"testing"

	"ccdem/internal/app"
	"ccdem/internal/core"
	"ccdem/internal/fault"
	"ccdem/internal/sim"
)

// Robustness tests: pathological configurations must behave sensibly, not
// panic or wedge.

func TestTinyScreenDevice(t *testing.T) {
	d := mustDevice(t, Config{Width: 8, Height: 8, MeterSamples: 4, Governor: GovernorSectionBoost})
	mustApp(t, d, "Jelly Splash")
	d.Run(5 * sim.Second)
	st := d.Stats()
	if st.FrameRate <= 0 {
		t.Errorf("tiny screen latched nothing: %+v", st)
	}
}

func TestSingleRefreshLevelDevice(t *testing.T) {
	// One level: the governor has nothing to choose; everything still runs.
	d := mustDevice(t, Config{RefreshLevels: []int{60}, Governor: GovernorSection})
	mustApp(t, d, "Facebook")
	d.Run(5 * sim.Second)
	st := d.Stats()
	if st.MeanRefreshHz != 60 || st.RefreshSwitches != 0 {
		t.Errorf("single-level device switched: %+v", st)
	}
}

func TestZeroRateApp(t *testing.T) {
	// An app that never invalidates after its first frame.
	p := app.Params{
		Name: "frozen", Cat: app.General, Style: app.StylePulse,
	}
	d := mustDevice(t, Config{Governor: GovernorSection})
	m, err := d.InstallApp(p)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(10 * sim.Second)
	st := d.Stats()
	// Exactly the initial frame.
	if frames, _ := d.Meter().Totals(); frames != 1 {
		t.Errorf("frozen app latched %d frames, want 1", frames)
	}
	// The governor idles the panel at its floor.
	if d.Panel().Rate() != 20 {
		t.Errorf("panel at %d Hz under a frozen app, want 20", d.Panel().Rate())
	}
	if st.DisplayQuality != 1 {
		t.Errorf("frozen app quality = %v, want 1 (nothing to drop)", st.DisplayQuality)
	}
	_ = m
}

func TestMaxRateApp(t *testing.T) {
	// An app demanding more than the pacer can deliver is clamped at 60.
	p := app.Params{
		Name: "firehose", Cat: app.Game, Style: app.StyleSprites,
		IdleContentFPS: 240, IdleInvalidateFPS: 240,
		TouchContentFPS: 240, TouchInvalidateFPS: 240,
		FullScreenRender: true,
	}
	d := mustDevice(t, Config{Governor: GovernorOff})
	if _, err := d.InstallApp(p); err != nil {
		t.Fatal(err)
	}
	d.Run(5 * sim.Second)
	st := d.Stats()
	if st.FrameRate > 61 {
		t.Errorf("frame rate = %v above the V-Sync ceiling", st.FrameRate)
	}
	if st.IntendedRate > 61 {
		t.Errorf("intended rate = %v above the pacer ceiling", st.IntendedRate)
	}
}

func TestManyAppsInstalled(t *testing.T) {
	// Several concurrent surfaces: composition and accounting stay sane.
	d := mustDevice(t, Config{Governor: GovernorSection})
	for _, name := range []string{"Weather", "Tiny Flashlight", "KakaoTalk"} {
		mustApp(t, d, name)
	}
	d.Run(5 * sim.Second)
	st := d.Stats()
	if st.FrameRate <= 0 || st.MeanPowerMW <= 0 {
		t.Errorf("multi-app stats = %+v", st)
	}
}

func TestNonStandardLevels(t *testing.T) {
	// An odd level menu still derives a working section table.
	d := mustDevice(t, Config{RefreshLevels: []int{17, 33, 51}, Governor: GovernorSectionBoost})
	mustApp(t, d, "Jelly Splash")
	d.Run(10 * sim.Second)
	st := d.Stats()
	if st.MeanRefreshHz < 17 || st.MeanRefreshHz > 51 {
		t.Errorf("mean refresh %v outside level range", st.MeanRefreshHz)
	}
	if st.DisplayQuality < 0.7 {
		t.Errorf("quality = %v on odd level menu", st.DisplayQuality)
	}
}

// chaosRun executes one 30 s faulted session under section+boost and
// returns its stats. touches replays a fixed Monkey script; without it
// the app runs autonomously (no boosts masking governor behaviour).
func chaosRun(t *testing.T, appName string, touches bool, plan fault.Plan, hard *core.HardeningConfig) Stats {
	t.Helper()
	d := mustDevice(t, Config{
		Governor:     GovernorSectionBoost,
		MeterSamples: 2304,
		Faults:       fault.New(99, plan),
		Hardening:    hard,
	})
	mustApp(t, d, appName)
	if touches {
		d.PlayScript(script(t, 7, 30*sim.Second))
	}
	d.Run(30 * sim.Second)
	return d.Stats()
}

// TestHardenedQualityFloorPerFaultClass: under each fault class alone, a
// hardened device keeps TrueQuality — the fraction of intended content
// updates that visibly reached the screen — above a floor. Touch faults
// get a lower floor: a dropped touch loses its boost (and the app's
// response to it) in a way no display-side watchdog can reconstruct.
func TestHardenedQualityFloorPerFaultClass(t *testing.T) {
	cases := []struct {
		name  string
		plan  fault.Plan
		floor float64
	}{
		{"panel-drop", fault.Plan{PanelDropProb: 0.5}, 0.95},
		{"panel-delay", fault.Plan{PanelDelayProb: 0.5, PanelDelayMaxVsyncs: 8}, 0.95},
		{"panel-stick", fault.Plan{PanelStickEvery: 10 * sim.Second, PanelStickFor: 3 * sim.Second}, 0.95},
		{"meter-corrupt", fault.Plan{MeterCorruptProb: 0.05}, 0.95},
		{"meter-freeze", fault.Plan{MeterFreezeEvery: 8 * sim.Second, MeterFreezeFor: 4 * sim.Second}, 0.95},
		{"touch-drop", fault.Plan{TouchDropProb: 0.3}, 0.85},
		{"touch-delay", fault.Plan{TouchDelayProb: 0.3, TouchDelayMax: 80 * sim.Millisecond}, 0.90},
		{"app-stall", fault.Plan{AppStallEvery: 10 * sim.Second, AppStallFor: 400 * sim.Millisecond}, 0.90},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := chaosRun(t, "Jelly Splash", true, tc.plan, core.DefaultHardening())
			if s.FaultsInjected == 0 {
				t.Fatal("plan injected no faults")
			}
			if s.TrueQuality < tc.floor {
				t.Errorf("TrueQuality = %.3f, want >= %.2f (%d faults)",
					s.TrueQuality, tc.floor, s.FaultsInjected)
			}
		})
	}
}

// TestFailSafeEntersAndRecovers: with every panel switch dropping, the
// retry chain exhausts and the watchdog pins fail-safe; after the
// recovery dwell (panel already at maximum, content alive) it exits and
// probes again. MX Player runs autonomously so the decided rate stays
// steady and the verification chain is not reset by boosts.
func TestFailSafeEntersAndRecovers(t *testing.T) {
	plan := fault.Plan{PanelDropProb: 1}
	s := chaosRun(t, "MX Player", false, plan, core.DefaultHardening())
	if s.FailSafeEnters == 0 {
		t.Fatal("watchdog never entered fail-safe under dropped switches")
	}
	if s.FailSafeExits == 0 {
		t.Error("fail-safe never recovered after the dwell")
	}
	if s.FailSafeTime == 0 {
		t.Error("fail-safe episodes accumulated no pinned time")
	}
	if s.SwitchRetries == 0 {
		t.Error("hardened governor reported no switch retries")
	}
}

// TestHardeningRescuesDeadMeter is the PR's headline scenario: a frozen
// meter starves the governor of content evidence, the unhardened device
// ratchets the panel down and visibly drops content, while the hardened
// device's dead-meter watchdog pins maximum refresh and preserves quality.
func TestHardeningRescuesDeadMeter(t *testing.T) {
	plan := fault.Plan{MeterFreezeEvery: 6 * sim.Second, MeterFreezeFor: 4 * sim.Second}
	unhard := chaosRun(t, "MX Player", false, plan, nil)
	hard := chaosRun(t, "MX Player", false, plan, core.DefaultHardening())
	if hard.TrueQuality < 0.95 {
		t.Errorf("hardened TrueQuality = %.3f, want >= 0.95", hard.TrueQuality)
	}
	if unhard.TrueQuality >= 0.95 {
		t.Errorf("unhardened TrueQuality = %.3f survived the dead meter; the scenario is not stressing",
			unhard.TrueQuality)
	}
	if hard.TrueQuality <= unhard.TrueQuality {
		t.Errorf("hardening did not improve quality: %.3f vs %.3f",
			hard.TrueQuality, unhard.TrueQuality)
	}
	if unhard.FailSafeEnters != 0 || unhard.SwitchRetries != 0 {
		t.Error("unhardened device reported hardening activity")
	}
}

// TestFaultedRunDeterministic: the same seed and plan reproduce
// bit-identical stats; a different injector seed diverges.
func TestFaultedRunDeterministic(t *testing.T) {
	// Stats.Breakdown is a map; project the comparable fields.
	key := func(s Stats) [6]float64 {
		return [6]float64{
			s.MeanPowerMW, s.EnergyMJ, s.TrueQuality,
			float64(s.FaultsInjected), float64(s.RefreshSwitches), float64(s.FailSafeEnters),
		}
	}
	plan := fault.DefaultPlan()
	a := chaosRun(t, "Jelly Splash", true, plan, core.DefaultHardening())
	b := chaosRun(t, "Jelly Splash", true, plan, core.DefaultHardening())
	if key(a) != key(b) {
		t.Errorf("identical faulted runs diverged:\n%+v\n%+v", a, b)
	}
	d := mustDevice(t, Config{
		Governor:     GovernorSectionBoost,
		MeterSamples: 2304,
		Faults:       fault.New(100, plan),
		Hardening:    core.DefaultHardening(),
	})
	mustApp(t, d, "Jelly Splash")
	d.PlayScript(script(t, 7, 30*sim.Second))
	d.Run(30 * sim.Second)
	if key(d.Stats()) == key(a) {
		t.Error("different injector seeds produced identical runs")
	}
}

func TestVeryLongRunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	// 10 virtual minutes: counters keep growing, nothing wedges, energy
	// stays consistent with mean power.
	d := mustDevice(t, Config{Governor: GovernorSectionBoost})
	mustApp(t, d, "Cash Slide")
	d.PlayScript(script(t, 50, 10*sim.Minute))
	d.Run(10 * sim.Minute)
	st := d.Stats()
	if st.Duration != 10*sim.Minute {
		t.Errorf("duration = %v", st.Duration)
	}
	wantEnergy := st.MeanPowerMW * st.Duration.Seconds()
	if diff := st.EnergyMJ - wantEnergy; diff > wantEnergy*0.01 || diff < -wantEnergy*0.01 {
		t.Errorf("energy %v inconsistent with mean power × time %v", st.EnergyMJ, wantEnergy)
	}
}
