package ccdem

import (
	"testing"

	"ccdem/internal/app"
	"ccdem/internal/sim"
)

// Robustness tests: pathological configurations must behave sensibly, not
// panic or wedge.

func TestTinyScreenDevice(t *testing.T) {
	d := mustDevice(t, Config{Width: 8, Height: 8, MeterSamples: 4, Governor: GovernorSectionBoost})
	mustApp(t, d, "Jelly Splash")
	d.Run(5 * sim.Second)
	st := d.Stats()
	if st.FrameRate <= 0 {
		t.Errorf("tiny screen latched nothing: %+v", st)
	}
}

func TestSingleRefreshLevelDevice(t *testing.T) {
	// One level: the governor has nothing to choose; everything still runs.
	d := mustDevice(t, Config{RefreshLevels: []int{60}, Governor: GovernorSection})
	mustApp(t, d, "Facebook")
	d.Run(5 * sim.Second)
	st := d.Stats()
	if st.MeanRefreshHz != 60 || st.RefreshSwitches != 0 {
		t.Errorf("single-level device switched: %+v", st)
	}
}

func TestZeroRateApp(t *testing.T) {
	// An app that never invalidates after its first frame.
	p := app.Params{
		Name: "frozen", Cat: app.General, Style: app.StylePulse,
	}
	d := mustDevice(t, Config{Governor: GovernorSection})
	m, err := d.InstallApp(p)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(10 * sim.Second)
	st := d.Stats()
	// Exactly the initial frame.
	if frames, _ := d.Meter().Totals(); frames != 1 {
		t.Errorf("frozen app latched %d frames, want 1", frames)
	}
	// The governor idles the panel at its floor.
	if d.Panel().Rate() != 20 {
		t.Errorf("panel at %d Hz under a frozen app, want 20", d.Panel().Rate())
	}
	if st.DisplayQuality != 1 {
		t.Errorf("frozen app quality = %v, want 1 (nothing to drop)", st.DisplayQuality)
	}
	_ = m
}

func TestMaxRateApp(t *testing.T) {
	// An app demanding more than the pacer can deliver is clamped at 60.
	p := app.Params{
		Name: "firehose", Cat: app.Game, Style: app.StyleSprites,
		IdleContentFPS: 240, IdleInvalidateFPS: 240,
		TouchContentFPS: 240, TouchInvalidateFPS: 240,
		FullScreenRender: true,
	}
	d := mustDevice(t, Config{Governor: GovernorOff})
	if _, err := d.InstallApp(p); err != nil {
		t.Fatal(err)
	}
	d.Run(5 * sim.Second)
	st := d.Stats()
	if st.FrameRate > 61 {
		t.Errorf("frame rate = %v above the V-Sync ceiling", st.FrameRate)
	}
	if st.IntendedRate > 61 {
		t.Errorf("intended rate = %v above the pacer ceiling", st.IntendedRate)
	}
}

func TestManyAppsInstalled(t *testing.T) {
	// Several concurrent surfaces: composition and accounting stay sane.
	d := mustDevice(t, Config{Governor: GovernorSection})
	for _, name := range []string{"Weather", "Tiny Flashlight", "KakaoTalk"} {
		mustApp(t, d, name)
	}
	d.Run(5 * sim.Second)
	st := d.Stats()
	if st.FrameRate <= 0 || st.MeanPowerMW <= 0 {
		t.Errorf("multi-app stats = %+v", st)
	}
}

func TestNonStandardLevels(t *testing.T) {
	// An odd level menu still derives a working section table.
	d := mustDevice(t, Config{RefreshLevels: []int{17, 33, 51}, Governor: GovernorSectionBoost})
	mustApp(t, d, "Jelly Splash")
	d.Run(10 * sim.Second)
	st := d.Stats()
	if st.MeanRefreshHz < 17 || st.MeanRefreshHz > 51 {
		t.Errorf("mean refresh %v outside level range", st.MeanRefreshHz)
	}
	if st.DisplayQuality < 0.7 {
		t.Errorf("quality = %v on odd level menu", st.DisplayQuality)
	}
}

func TestVeryLongRunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	// 10 virtual minutes: counters keep growing, nothing wedges, energy
	// stays consistent with mean power.
	d := mustDevice(t, Config{Governor: GovernorSectionBoost})
	mustApp(t, d, "Cash Slide")
	d.PlayScript(script(t, 50, 10*sim.Minute))
	d.Run(10 * sim.Minute)
	st := d.Stats()
	if st.Duration != 10*sim.Minute {
		t.Errorf("duration = %v", st.Duration)
	}
	wantEnergy := st.MeanPowerMW * st.Duration.Seconds()
	if diff := st.EnergyMJ - wantEnergy; diff > wantEnergy*0.01 || diff < -wantEnergy*0.01 {
		t.Errorf("energy %v inconsistent with mean power × time %v", st.EnergyMJ, wantEnergy)
	}
}
