#!/usr/bin/env bash
# Fault-tolerance smoke for the campaign service daemon (make svc-chaos),
# DESIGN.md §14. Two scenarios, one invariant: the merged result must be
# byte-identical to the direct single-process `ccdem-fleet -stream` run.
#
#   1. Worker loss: a shard worker SIGKILLs itself mid-shard (crash plan
#      in CCDEM_SVC_CRASH, armed through a file so exactly one attempt
#      dies); the daemon re-dispatches the shard and finishes the job.
#   2. Daemon loss: the daemon is killed with SIGKILL mid-campaign and
#      restarted over the same -state-dir; it resumes the journaled job
#      under its original ID, skips checkpointed shards, and finishes.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
svc_pid=""
cleanup() {
  [ -n "$svc_pid" ] && kill -9 "$svc_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/ccdem-svc" ./cmd/ccdem-svc
go build -o "$workdir/ccdem-fleet" ./cmd/ccdem-fleet

"$workdir/ccdem-fleet" -write-spec "$workdir/cohort.json" -devices 24 -duration 2 -seed 7
"$workdir/ccdem-fleet" -spec "$workdir/cohort.json" -stream > "$workdir/direct.json"

# start_daemon <logfile> [extra flags...] — boots the daemon, waits for
# the listen report, and leaves $svc_pid/$base set.
start_daemon() {
  local log=$1; shift
  "$workdir/ccdem-svc" -listen 127.0.0.1:0 -log-format json "$@" 2> "$log" &
  svc_pid=$!
  base=""
  for _ in $(seq 1 100); do
    base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$log" | head -n 1)
    [ -n "$base" ] && break
    sleep 0.1
  done
  if [ -z "$base" ]; then
    echo "svc chaos: daemon never reported its listen address" >&2
    cat "$log" >&2
    exit 1
  fi
}

submit_job() { # submit_job <shards> -> job id on stdout
  jq -c --argjson shards "$1" '{spec: ., shards: $shards, workers: 2}' "$workdir/cohort.json" \
    | curl -fsS -H 'Content-Type: application/json' -d @- "$base/api/jobs" \
    | jq -r .id
}

wait_done() { # wait_done <job id> <logfile>
  local id=$1 log=$2 state=queued
  for _ in $(seq 1 600); do
    state=$(curl -fsS "$base/api/jobs/$id" | jq -r .state)
    case "$state" in done|failed|cancelled) break ;; esac
    sleep 0.1
  done
  if [ "$state" != done ]; then
    echo "svc chaos: job $id finished in state $state" >&2
    curl -fsS "$base/api/jobs/$id" >&2 || true
    cat "$log" >&2
    exit 1
  fi
}

# --- Scenario 1: shard worker killed mid-shard, re-dispatched --------
arm="$workdir/crash-armed"
touch "$arm"
CCDEM_SVC_CRASH="shard=1,after=2,mode=kill,file=$arm" \
  start_daemon "$workdir/svc-kill.log" -shard-retries 3
id=$(submit_job 3)
wait_done "$id" "$workdir/svc-kill.log"

if [ -e "$arm" ]; then
  echo "svc chaos: crash plan never fired (arming file still present)" >&2
  exit 1
fi
retries=$(curl -fsS "$base/api/jobs/$id" | jq -r '.retries // 0')
if [ "$retries" -lt 1 ]; then
  echo "svc chaos: expected at least one shard re-dispatch, got $retries" >&2
  exit 1
fi
curl -fsS "$base/metrics" | grep -q '^svc_shard_retries_total{class="worker_exit"}'
grep -q 're-dispatching' "$workdir/svc-kill.log"

curl -fsS "$base/api/jobs/$id/result" > "$workdir/kill-result.json"
diff "$workdir/kill-result.json" "$workdir/direct.json"

kill -TERM "$svc_pid"
wait "$svc_pid"
svc_pid=""
echo "svc chaos: worker-kill campaign is byte-identical to the direct run ($retries re-dispatches)"

# --- Scenario 2: daemon SIGKILLed mid-campaign, resumed from disk ----
# A one-shot worker kill on the last shard holds the campaign open past
# its siblings (retry backoff + re-run), so the daemon kill below lands
# while earlier shards are already checkpointed but the job is not done.
state_dir="$workdir/state"
touch "$arm"
CCDEM_SVC_CRASH="shard=5,after=2,mode=kill,file=$arm" \
  start_daemon "$workdir/svc-crash.log" -state-dir "$state_dir" -checkpoint-every 1
id=$(submit_job 6)

# Wait for the first checkpoint write, then kill -9 the daemon: no
# drain, no warning — the crash-safe persistence must carry the job.
ckpt="$state_dir/$id.ckpt"
for _ in $(seq 1 600); do
  [ -e "$ckpt" ] && break
  sleep 0.02
done
if [ ! -e "$ckpt" ]; then
  echo "svc chaos: no checkpoint appeared at $ckpt" >&2
  cat "$workdir/svc-crash.log" >&2
  exit 1
fi
kill -9 "$svc_pid"
wait "$svc_pid" 2>/dev/null || true
svc_pid=""

start_daemon "$workdir/svc-resume.log" -state-dir "$state_dir" -checkpoint-every 1
grep -q 'job recovered' "$workdir/svc-resume.log"
wait_done "$id" "$workdir/svc-resume.log"

resumed=$(curl -fsS "$base/api/jobs/$id" | jq -r '.resumed_shards // 0')
if [ "$resumed" -lt 1 ]; then
  echo "svc chaos: expected resumed shards after daemon crash, got $resumed" >&2
  exit 1
fi
curl -fsS "$base/api/jobs/$id/result" > "$workdir/resume-result.json"
diff "$workdir/resume-result.json" "$workdir/direct.json"

# Terminal jobs clean their journal: a third boot has nothing to resume.
if [ -n "$(ls -A "$state_dir")" ]; then
  echo "svc chaos: state dir not cleaned after completion:" >&2
  ls -l "$state_dir" >&2
  exit 1
fi

kill -TERM "$svc_pid"
wait "$svc_pid"
svc_pid=""

echo "svc chaos: resumed campaign is byte-identical to the direct run ($resumed shards from checkpoint)"
