#!/usr/bin/env bash
# End-to-end smoke for the campaign service daemon (make svc): boot
# ccdem-svc, run a 2-way subprocess-sharded campaign through the HTTP
# API, and require the merged result to be byte-identical to the direct
# single-process `ccdem-fleet -stream` run of the same spec. Also checks
# the manual CLI halves (-shard / -merge-shards) and graceful SIGTERM
# shutdown.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
svc_pid=""
cleanup() {
  [ -n "$svc_pid" ] && kill "$svc_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/ccdem-svc" ./cmd/ccdem-svc
go build -o "$workdir/ccdem-fleet" ./cmd/ccdem-fleet

"$workdir/ccdem-fleet" -write-spec "$workdir/cohort.json" -devices 12 -duration 2 -seed 7
"$workdir/ccdem-fleet" -spec "$workdir/cohort.json" -stream > "$workdir/direct.json"

# --- CLI halves: shard runs merged by ccdem-fleet itself -------------
"$workdir/ccdem-fleet" -spec "$workdir/cohort.json" -shard 0/2 > "$workdir/shard0.json"
"$workdir/ccdem-fleet" -spec "$workdir/cohort.json" -shard 1/2 > "$workdir/shard1.json"
"$workdir/ccdem-fleet" -merge-shards "$workdir/shard0.json" "$workdir/shard1.json" > "$workdir/cli-merged.json"
diff "$workdir/cli-merged.json" "$workdir/direct.json"

# --- Service: daemon + worker subprocesses over HTTP -----------------
"$workdir/ccdem-svc" -listen 127.0.0.1:0 2> "$workdir/svc.log" &
svc_pid=$!

base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$workdir/svc.log" | head -n 1)
  [ -n "$base" ] && break
  sleep 0.1
done
if [ -z "$base" ]; then
  echo "svc smoke: daemon never reported its listen address" >&2
  cat "$workdir/svc.log" >&2
  exit 1
fi

curl -fsS "$base/healthz" > /dev/null
curl -fsS "$base/version" | grep -q go_version

id=$(jq -c '{spec: ., shards: 2, workers: 2}' "$workdir/cohort.json" \
  | curl -fsS -H 'Content-Type: application/json' -d @- "$base/api/jobs" \
  | jq -r .id)

state=queued
for _ in $(seq 1 300); do
  state=$(curl -fsS "$base/api/jobs/$id" | jq -r .state)
  case "$state" in done|failed|cancelled) break ;; esac
  sleep 0.1
done
if [ "$state" != done ]; then
  echo "svc smoke: job $id finished in state $state" >&2
  curl -fsS "$base/api/jobs/$id" >&2 || true
  cat "$workdir/svc.log" >&2
  exit 1
fi

curl -fsS "$base/api/jobs/$id/result" > "$workdir/svc-result.json"
diff "$workdir/svc-result.json" "$workdir/direct.json"
curl -fsS "$base/api/metrics" | grep -q 'svc.jobs.submitted'

kill -TERM "$svc_pid"
wait "$svc_pid"
svc_pid=""

echo "svc smoke: sharded service and CLI results are byte-identical to the direct run"
