#!/usr/bin/env bash
# Telemetry smoke for the campaign service daemon (make telemetry): boot
# ccdem-svc with JSON logs and the pprof listener, run a 2-way
# subprocess-sharded campaign, and hold every telemetry surface to its
# contract — /metrics must pass the strict Prometheus parser
# (ccdem-obscheck), the campaign trace must carry dispatch/run/encode/
# merge spans from the daemon plus one process per shard worker, the log
# stream must be structured JSON with job correlation, and the read
# endpoints must declare no-store caching. A final step exposes the
# device-level fleet registry (ccdem-fleet -metrics-prom) and holds the
# palette/memo counter families to the same strict parser. Needs curl
# and jq.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
svc_pid=""
cleanup() {
  [ -n "$svc_pid" ] && kill "$svc_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/ccdem-svc" ./cmd/ccdem-svc
go build -o "$workdir/ccdem-fleet" ./cmd/ccdem-fleet
go build -o "$workdir/ccdem-obscheck" ./cmd/ccdem-obscheck

"$workdir/ccdem-fleet" -write-spec "$workdir/cohort.json" -devices 12 -duration 2 -seed 7

"$workdir/ccdem-svc" -listen 127.0.0.1:0 -debug-addr 127.0.0.1:0 -log-format json \
  2> "$workdir/svc.log" &
svc_pid=$!

base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$workdir/svc.log" | head -n 1)
  [ -n "$base" ] && break
  sleep 0.1
done
if [ -z "$base" ]; then
  echo "telemetry smoke: daemon never reported its listen address" >&2
  cat "$workdir/svc.log" >&2
  exit 1
fi
debug=$(sed -n 's#.*pprof on \(http://[^ ]*\).*#\1#p' "$workdir/svc.log" | head -n 1)
if [ -z "$debug" ]; then
  echo "telemetry smoke: daemon never reported its pprof address" >&2
  cat "$workdir/svc.log" >&2
  exit 1
fi

# --- Exposition format, before any job ------------------------------
curl -fsS "$base/metrics" | "$workdir/ccdem-obscheck" -prom - \
  -require ccdem_build_info,svc_jobs_submitted_total,svc_job_duration_s

# Header contract: exposition content type + no-store on read endpoints.
headers=$(curl -fsS -D - -o /dev/null "$base/metrics")
echo "$headers" | grep -qi 'content-type: text/plain; version=0.0.4'
echo "$headers" | grep -qi 'cache-control: no-store'
curl -fsS -D - -o /dev/null "$base/api/jobs" | grep -qi 'cache-control: no-store'

# --- A 2-way subprocess-sharded campaign ----------------------------
id=$(jq -c '{spec: ., shards: 2, workers: 2}' "$workdir/cohort.json" \
  | curl -fsS -H 'Content-Type: application/json' -d @- "$base/api/jobs" \
  | jq -r .id)

state=queued
for _ in $(seq 1 300); do
  state=$(curl -fsS "$base/api/jobs/$id" | jq -r .state)
  case "$state" in done|failed|cancelled) break ;; esac
  sleep 0.1
done
if [ "$state" != done ]; then
  echo "telemetry smoke: job $id finished in state $state" >&2
  cat "$workdir/svc.log" >&2
  exit 1
fi

# Stage timings ride the status document.
curl -fsS "$base/api/jobs/$id" | jq -e '.stage_s.run > 0' > /dev/null

# --- Campaign trace: daemon + one pid per shard worker --------------
curl -fsS "$base/api/jobs/$id/trace" > "$workdir/trace.json"
"$workdir/ccdem-obscheck" -trace "$workdir/trace.json" -min-pids 3 \
  -spans dispatch,run,encode,merge

# --- Metrics after the run, including per-job series ----------------
curl -fsS "$base/metrics" | "$workdir/ccdem-obscheck" -prom - \
  -require svc_jobs_completed_total,svc_devices_done_total,svc_job_state,svc_job_devices_done

# --- Structured logs: daemon records + relayed worker records -------
grep -q '"msg":"job submitted"' "$workdir/svc.log"
grep -q '"msg":"job finished"' "$workdir/svc.log"
grep -q '"msg":"shard complete".*"job":"'"$id"'"' "$workdir/svc.log"

# --- Profiling listener ---------------------------------------------
curl -fsS "${debug}cmdline" > /dev/null

# --- Device-level fleet registry: palette + memo counters -----------
# The svc /metrics surface carries service families only; the device
# counters live in the per-run fleet registry, exported here in the
# same exposition format and held to the same parser.
"$workdir/ccdem-fleet" -devices 4 -duration 2 -seed 7 \
  -metrics-prom "$workdir/fleet.prom" > /dev/null
"$workdir/ccdem-obscheck" -prom "$workdir/fleet.prom" \
  -require fb_palette_tiles_total,fb_palette_promotions_total,app_memo_hits_total,app_memo_misses_total,frames_total

kill -TERM "$svc_pid"
wait "$svc_pid"
svc_pid=""

echo "telemetry smoke: metrics, trace, logs, and pprof all check out"
